(* tilelink — explore the TileLink reproduction from the command line.

     tilelink info
     tilelink simulate --kernel ag-gemm --m 8192 --k 4096 --n 2752 \
       --binding dma --comm-tile 512 --trace
     tilelink tune --kernel gemm-rs --m 8192 --k 1376 --n 4096
     tilelink validate --kernel moe
     tilelink attention --seq 32768 --heads 32 *)

open Cmdliner
open Tilelink_core
open Tilelink_machine
open Tilelink_workloads
open Tilelink_baselines

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let world_arg =
  Arg.(value & opt int 8 & info [ "world" ] ~docv:"N" ~doc:"Number of ranks.")

let m_arg = Arg.(value & opt int 8192 & info [ "m" ] ~doc:"Row extent (M).")
let k_arg = Arg.(value & opt int 4096 & info [ "k" ] ~doc:"Reduction dim (K).")
let n_arg = Arg.(value & opt int 2752 & info [ "n" ] ~doc:"Column extent (N).")

let binding_arg =
  let parse = function
    | "dma" -> Ok Design_space.Comm_on_dma
    | "hybrid" -> Ok (Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 })
    | s -> (
      match int_of_string_opt s with
      | Some sms -> Ok (Design_space.Comm_on_sm sms)
      | None -> Error (`Msg "binding must be dma, hybrid, or an SM count"))
  in
  let print ppf b =
    Fmt.string ppf (Design_space.resource_binding_to_string b)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Design_space.Comm_on_dma
    & info [ "binding" ] ~docv:"dma|hybrid|SMS"
        ~doc:"Communication resource binding.")

let comm_tile_arg =
  Arg.(value & opt int 512 & info [ "comm-tile" ] ~doc:"Comm tile rows.")

let compute_tile_arg =
  Arg.(value & opt int 128 & info [ "compute-tile" ] ~doc:"Compute tile rows.")

let stages_arg =
  Arg.(value & opt int 2 & info [ "stages" ] ~doc:"Software pipeline stages.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print an ASCII timeline of rank 0.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:"Write the full timeline in Chrome tracing format to $(docv).")

let write_trace_json cluster = function
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Tilelink_sim.Trace.to_chrome_json (Cluster.trace cluster));
    close_out oc;
    Printf.printf "wrote Chrome trace to %s (open in chrome://tracing)\n" path

let kernel_arg =
  Arg.(
    value
    & opt (enum [ ("ag-gemm", `Ag_gemm); ("gemm-rs", `Gemm_rs); ("moe", `Moe) ])
        `Ag_gemm
    & info [ "kernel" ] ~docv:"ag-gemm|gemm-rs|moe" ~doc:"Kernel to operate on.")

let spec = Calib.h800

(* Declarative topology presets; a bad value renders the full list and
   exits through the CLI-error path (mapped to exit 2 in main). *)
let topology_conv =
  let parse s =
    match Topology.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Fmt.string ppf (Topology.name t) in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(
    value
    & opt (some topology_conv) None
    & info [ "topology" ]
        ~docv:(String.concat "|" (Topology.names ()))
        ~doc:
          "Run on a declarative cluster topology (NVLink islands bridged by \
           NICs, heterogeneous rank scales, co-tenant NIC tax); the world \
           size becomes the topology's natural world and workload shapes \
           scale with it.")

let config ~world ~binding ~comm_tile ~compute_tile ~stages ~ring =
  {
    Design_space.comm_tile = (comm_tile, 128);
    compute_tile = (compute_tile, compute_tile);
    comm_order =
      (if ring then Tile.Ring_from_self { segments = world }
       else Tile.Row_major);
    compute_order =
      (if ring then Tile.Ring_from_self { segments = world }
       else Tile.Row_major);
    binding;
    stages;
    micro_block = 0;
  }

let print_rank0_timeline cluster =
  let trace = Cluster.trace cluster in
  let rank0 = Tilelink_sim.Trace.create () in
  List.iter
    (fun s ->
      if s.Tilelink_sim.Trace.rank = 0 then
        Tilelink_sim.Trace.add rank0 ~rank:0 ~lane:s.Tilelink_sim.Trace.lane
          ~label:s.Tilelink_sim.Trace.label ~t0:s.Tilelink_sim.Trace.t0
          ~t1:s.Tilelink_sim.Trace.t1)
    (Tilelink_sim.Trace.spans trace);
  print_endline (Tilelink_sim.Trace.render rank0)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run () =
    Format.printf "machine: %a@." Spec.pp spec;
    Printf.printf "overheads: launch %.1f us, host sync %.1f us, collective \
                   setup %.1f us\n"
      spec.Spec.overheads.kernel_launch spec.Spec.overheads.host_sync
      spec.Spec.overheads.collective_setup;
    Printf.printf "signals: notify %.2f us, wait %.2f us; fusion \
                   interference x%.2f\n"
      spec.Spec.overheads.signal_notify spec.Spec.overheads.signal_wait
      spec.Spec.overheads.fusion_interference
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the calibrated machine model.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate kernel world m k n binding comm_tile compute_tile stages trace
    trace_json =
  let cfg =
    config ~world ~binding ~comm_tile ~compute_tile ~stages ~ring:true
  in
  let program =
    match kernel with
    | `Ag_gemm ->
      Mlp.ag_gemm_program ~config:cfg { Mlp.m; k; n; world_size = world }
        ~spec_gpu:spec
    | `Gemm_rs ->
      Mlp.gemm_rs_program
        ~config:
          {
            cfg with
            Design_space.comm_order = Tile.Row_major;
            compute_order = Tile.Ring_prev_first { segments = world };
            comm_tile = (128, 2048);
          }
        { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world }
        ~spec_gpu:spec
    | `Moe ->
      let moe =
        {
          Moe.tokens = m;
          hidden = k;
          intermediate = n;
          experts = 32;
          topk = 2;
          world_size = world;
        }
      in
      Moe.part1_program moe (Moe.routing moe ~seed:17) ~spec_gpu:spec
  in
  Format.printf "%a@." Program.pp program;
  (match Consistency.verify_program program with
  | Ok () -> print_endline "memory consistency: ok"
  | Error v ->
    Format.printf "memory consistency VIOLATION: %a@."
      Consistency.pp_violation v);
  let cluster =
    Cluster.create
      ~trace_enabled:(trace || trace_json <> None)
      spec ~world_size:world
  in
  let result = Runtime.run cluster program in
  Printf.printf "simulated time: %.1f us (%d signal notifies)\n"
    result.Runtime.makespan result.Runtime.notifies;
  if trace then print_rank0_timeline cluster;
  write_trace_json cluster trace_json

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Build and simulate one overlapped kernel.")
    Term.(
      const simulate $ kernel_arg $ world_arg $ m_arg $ k_arg $ n_arg
      $ binding_arg $ comm_tile_arg $ compute_tile_arg $ stages_arg
      $ trace_arg $ trace_json_arg)

(* ------------------------------------------------------------------ *)
(* Parallel evaluation: shared --jobs / --cache plumbing               *)
(* ------------------------------------------------------------------ *)

module Exec = Tilelink_exec

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Evaluate independent candidates on $(docv) domains (1 = \
              sequential; results are identical either way).")

let cache_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:"Persist evaluation results to $(docv) and serve repeated \
              points from it on later runs.")

let make_pool jobs =
  if jobs > 1 then Some (Exec.Pool.create ~domains:jobs ()) else None

let make_cache = function
  | Some path -> Exec.Cache.create ~path ()
  | None -> Exec.Cache.create ()

let save_cache cache =
  match Exec.Cache.path cache with
  | Some path ->
    Exec.Cache.save cache;
    Printf.printf "cache: %d entries saved to %s\n" (Exec.Cache.length cache)
      path
  | None -> ()

let print_pool_stats = function
  | None -> ()
  | Some pool ->
    let s = Exec.Pool.stats pool in
    Printf.printf
      "pool: %d domains, %d tasks (%d stolen), task time %.2fs, wall %.2fs \
       (%.2fx)\n"
      (Exec.Pool.domains pool) s.Exec.Pool.tasks_run s.Exec.Pool.stolen
      s.Exec.Pool.task_time_s s.Exec.Pool.wall_time_s
      (if s.Exec.Pool.wall_time_s > 0.0 then
         s.Exec.Pool.task_time_s /. s.Exec.Pool.wall_time_s
       else 1.0)

(* ------------------------------------------------------------------ *)
(* tune                                                                *)
(* ------------------------------------------------------------------ *)

let tune kernel world m k n jobs cache_path =
  let pool = make_pool jobs in
  let cache = make_cache cache_path in
  let tuned =
    match kernel with
    | `Ag_gemm | `Moe -> Tuned.ag_gemm ?pool ~cache spec ~world_size:world ~m ~k ~n
    | `Gemm_rs -> Tuned.gemm_rs ?pool ~cache spec ~world_size:world ~m ~k ~n
  in
  Printf.printf "best of %d candidates: %.1f us\n  [%s]\n"
    tuned.Tuned.candidates_tried tuned.Tuned.best_time
    (Design_space.config_to_string tuned.Tuned.best_config);
  print_pool_stats pool;
  save_cache cache

let tune_cmd =
  Cmd.v
    (Cmd.info "tune" ~doc:"Search the decoupled design space for a shape.")
    Term.(
      const tune $ kernel_arg $ world_arg $ m_arg $ k_arg $ n_arg $ jobs_arg
      $ cache_path_arg)

(* ------------------------------------------------------------------ *)
(* autotune                                                            *)
(* ------------------------------------------------------------------ *)

(* Full design-space sweep (the [tune] command searches only the small
   curated candidate lists).  With --jobs N the independent simulator
   runs fan out over a domain pool; with --cache FILE repeated
   invocations replay already-evaluated points. *)

let print_outcome label (o : _ Tune.outcome) =
  Printf.printf
    "%s: best %.1f us [%s]\n   %d evaluated, %d skipped (build %d, invalid \
     %d, deadlock %d, race %d), cache %d hits / %d misses\n"
    label o.Tune.best.Tune.time
    (Design_space.config_to_string o.Tune.best.Tune.config)
    (List.length o.Tune.evaluated)
    o.Tune.skipped o.Tune.skipped_build o.Tune.skipped_invalid
    o.Tune.skipped_deadlock o.Tune.skipped_race o.Tune.cache_hits
    o.Tune.cache_misses;
  (* Why the winners win: schedules ranked by how much communication
     they left exposed on the critical path (fresh evaluations carry
     the measurement; pre-profiler cache hits may not). *)
  let by_blame =
    List.filter_map
      (fun (e : _ Tune.evaluation) ->
        Option.map (fun x -> (x, e)) e.Tune.exposed_comm_us)
      o.Tune.evaluated
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  match by_blame with
  | [] -> ()
  | _ ->
    Printf.printf "   exposed-communication blame (least first):\n";
    List.iteri
      (fun i (blame, (e : _ Tune.evaluation)) ->
        if i < 5 then
          Printf.printf "     %8.1f us exposed | %8.1f us total [%s]\n" blame
            e.Tune.time
            (Design_space.config_to_string e.Tune.config))
      by_blame

let autotune workload world m k n jobs cache_path =
  let pool = make_pool jobs in
  let cache = make_cache cache_path in
  let ring = Tile.Ring_from_self { segments = world } in
  let ag_space ~m ~k ~n =
    let space =
      {
        Design_space.comm_tiles =
          List.filter
            (fun (tm, _) -> m / world mod tm = 0)
            [ (128, 128); (256, 128); (512, 128); (1024, 128) ];
        compute_tiles = [ (128, 128) ];
        comm_orders = [ ring; Tile.Row_major ];
        compute_orders = [ ring ];
        bindings =
          [
            Design_space.Comm_on_dma;
            Design_space.Comm_on_sm 20;
            Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
          ];
        stage_choices = [ 1; 2 ];
        micro_blocks = [ 0 ];
      }
    in
    ( Printf.sprintf "autotune:ag_gemm:m=%d,k=%d,n=%d" m k n,
      Design_space.enumerate space,
      fun config ->
        Mlp.ag_gemm_program ~config
          { Mlp.m; k; n; world_size = world }
          ~spec_gpu:spec )
  in
  let rs_space ~m ~k ~n =
    let space =
      {
        Design_space.comm_tiles = [ (128, n); (256, n) ];
        compute_tiles = [ (128, 128) ];
        comm_orders = [ Tile.Row_major ];
        compute_orders = [ Tile.Ring_prev_first { segments = world }; ring ];
        bindings =
          [
            Design_space.Comm_on_sm 20;
            Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
          ];
        stage_choices = [ 1; 2 ];
        micro_blocks = [ 0 ];
      }
    in
    ( Printf.sprintf "autotune:gemm_rs:m=%d,k=%d,n=%d" m k n,
      Design_space.enumerate space,
      fun config ->
        Mlp.gemm_rs_program ~config
          { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world }
          ~spec_gpu:spec )
  in
  let sweeps =
    match workload with
    | `Mlp ->
      (* m/k/n are read as the layer's S/H/I, as in Table 2. *)
      let ipr = n / world in
      [
        ("AG+GEMM", ag_space ~m ~k ~n:(2 * ipr));
        ("GEMM+RS", rs_space ~m ~k:ipr ~n:k);
      ]
    | `Ag_gemm -> [ ("AG+GEMM", ag_space ~m ~k ~n) ]
    | `Gemm_rs -> [ ("GEMM+RS", rs_space ~m ~k ~n) ]
  in
  List.iter
    (fun (label, (workload_id, configs, build)) ->
      Printf.printf "%s: searching %d candidates...\n%!" label
        (List.length configs);
      match
        Tune.search_programs ?pool ~cache ~workload:workload_id ~build
          ~make_cluster:(fun () -> Cluster.create spec ~world_size:world)
          configs
      with
      | None -> Printf.printf "%s: no candidate built\n" label
      | Some outcome -> print_outcome label outcome)
    sweeps;
  print_pool_stats pool;
  save_cache cache

let autotune_cmd =
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("mlp", `Mlp); ("ag-gemm", `Ag_gemm); ("gemm-rs", `Gemm_rs) ])
          `Mlp
      & info [ "workload" ] ~docv:"mlp|ag-gemm|gemm-rs"
          ~doc:"What to sweep: both halves of the TP MLP, or one kernel.")
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Sweep the full decoupled design space, optionally in parallel \
          (--jobs) and through an evaluation cache (--cache).")
    Term.(
      const autotune $ workload_arg $ world_arg $ m_arg $ k_arg $ n_arg
      $ jobs_arg $ cache_path_arg)

(* ------------------------------------------------------------------ *)
(* ablation                                                            *)
(* ------------------------------------------------------------------ *)

(* One design axis at a time around a fixed base point (the CLI's
   counterpart of the bench ablation artifact); each axis's grid is an
   independent batch of simulator runs, so it fans out over the pool. *)

let ablation world m k n jobs =
  let pool = make_pool jobs in
  let ring = Tile.Ring_from_self { segments = world } in
  let shapes = { Mlp.m; k; n; world_size = world } in
  let base =
    {
      Design_space.comm_tile = (256, 128);
      compute_tile = (128, 128);
      comm_order = ring;
      compute_order = ring;
      binding = Design_space.Comm_on_dma;
      stages = 2;
      micro_block = 0;
    }
  in
  let run_axis axis configs =
    let times =
      Exec.Pool.map pool
        (fun (_, config) ->
          let cluster = Cluster.create spec ~world_size:world in
          (Runtime.run cluster
             (Mlp.ag_gemm_program ~config shapes ~spec_gpu:spec))
            .Runtime.makespan)
        configs
    in
    Printf.printf "%s:\n" axis;
    List.iter2
      (fun (label, _) time ->
        Printf.printf "  %-26s %8.1f us\n" label (Exec.Pool.get time))
      configs times
  in
  run_axis "resource binding"
    (List.map
       (fun binding ->
         ( Design_space.resource_binding_to_string binding,
           { base with Design_space.binding } ))
       [
         Design_space.Comm_on_dma;
         Design_space.Comm_on_sm 8;
         Design_space.Comm_on_sm 20;
         Design_space.Comm_on_sm 40;
         Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
       ]);
  run_axis "communication tile rows"
    (List.filter_map
       (fun tile ->
         if m / world mod tile = 0 then
           Some
             ( Printf.sprintf "%d rows/tile" tile,
               { base with Design_space.comm_tile = (tile, 128) } )
         else None)
       [ 128; 256; 512; 1024 ]);
  run_axis "pipeline stages"
    (List.map
       (fun stages ->
         (Printf.sprintf "stages=%d" stages, { base with Design_space.stages }))
       [ 1; 2; 4 ]);
  print_pool_stats pool

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Sweep one design axis at a time around a fixed AG+GEMM base \
          point, optionally in parallel (--jobs).")
    Term.(
      const ablation $ world_arg $ m_arg $ k_arg $ n_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sequential", `Sequential); ("parallel", `Parallel) ])
        `Sequential
    & info [ "backend" ] ~docv:"sequential|parallel"
        ~doc:
          "Execution backend: the sequential interpreter or the \
           domain-per-rank parallel backend.")

let domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for the parallel backend (ignored otherwise).")

let resolve_backend backend domains =
  match backend with
  | `Sequential -> `Sequential
  | `Parallel -> `Parallel domains

let validate kernel backend domains topology =
  let backend = resolve_backend backend domains in
  (* A topology fixes the world to its natural size; shapes scale with
     it so every rank keeps the same per-rank tile volume as the flat
     world-4 case. *)
  let world =
    match topology with
    | Some topo -> Topology.natural_world topo
    | None -> 4
  in
  let machine = Calib.test_machine in
  (match topology with
  | Some topo -> Printf.printf "topology: %s\n" (Topology.describe topo)
  | None -> ());
  let mk_cluster () = Cluster.create ?topology machine ~world_size:world in
  let ranks = List.init world Fun.id in
  let failed = ref false in
  let check name ok =
    Printf.printf "%-28s %s\n" name (if ok then "ok" else "MISMATCH");
    if not ok then failed := true
  in
  (match kernel with
  | `Ag_gemm ->
    let shapes = { Mlp.m = 4 * world; k = 4; n = 6; world_size = world } in
    let cfg =
      config ~world ~binding:(Design_space.Comm_on_sm 1) ~comm_tile:2
        ~compute_tile:2 ~stages:2 ~ring:true
    in
    let memory = Mlp.ag_gemm_alloc shapes ~seed:1 in
    let cluster = mk_cluster () in
    ignore
      (Runtime.run ~data:true ~memory ~backend cluster
         (Mlp.ag_gemm_program ~config:cfg shapes ~spec_gpu:machine));
    check
      (Printf.sprintf "ag-gemm (%d ranks)" world)
      (List.for_all
         (fun rank ->
           Tilelink_tensor.Check.close
             (Mlp.ag_gemm_reference memory shapes ~rank)
             (Memory.find memory ~rank ~name:"y"))
         ranks)
  | `Gemm_rs ->
    let shapes =
      { Mlp.rs_m = 4 * world; rs_k = 3; rs_n = 4; rs_world = world }
    in
    let cfg =
      {
        Design_space.comm_tile = (2, 2);
        compute_tile = (2, 2);
        comm_order = Tile.Row_major;
        compute_order = Tile.Row_major;
        binding = Design_space.Comm_on_sm 1;
        stages = 1;
        micro_block = 0;
      }
    in
    let memory = Mlp.gemm_rs_alloc shapes ~seed:2 in
    let cluster = mk_cluster () in
    ignore
      (Runtime.run ~data:true ~memory ~backend cluster
         (Mlp.gemm_rs_program ~config:cfg shapes ~spec_gpu:machine));
    check
      (Printf.sprintf "gemm-rs (%d ranks)" world)
      (List.for_all
         (fun rank ->
           Tilelink_tensor.Check.close
             (Mlp.gemm_rs_reference memory shapes ~rank)
             (Memory.find memory ~rank ~name:"out"))
         ranks)
  | `Moe ->
    let moe =
      {
        Moe.tokens = 4 * world;
        hidden = 4;
        intermediate = 2 * world;
        experts = world;
        topk = 2;
        world_size = world;
      }
    in
    let route = Moe.routing moe ~seed:3 in
    let memory = Moe.part2_alloc moe ~seed:4 in
    let cluster = mk_cluster () in
    ignore
      (Runtime.run ~data:true ~memory ~backend cluster
         (Moe.part2_program moe route ~spec_gpu:machine
            ~config:
              {
                Moe.gg_tile_rows = 2;
                reduce_tile_rows = 2;
                rs_tile_rows = 2;
                reduce_sms = 1;
                rs_sms = 1;
              }));
    check
      (Printf.sprintf "moe part2 (%d ranks)" world)
      (List.for_all
         (fun rank ->
           Tilelink_tensor.Check.close ~atol:1e-8
             (Moe.part2_reference memory moe route ~rank)
             (Memory.find memory ~rank ~name:"out"))
         ranks));
  if !failed then exit 1

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Run a kernel with real data and compare to the reference, on \
          either execution backend (--backend parallel --domains N) and \
          optionally on a declarative topology (--topology).")
    Term.(const validate $ kernel_arg $ backend_arg $ domains_arg $ topology_arg)

(* ------------------------------------------------------------------ *)
(* sanity                                                              *)
(* ------------------------------------------------------------------ *)

(* Every kernel variant against the scalar reference, bit for bit: the
   gemm microkernel at each shipped block size against the
   bounds-checked naive loop, then every shipped workload program
   sequential vs parallel.  Exact equality, not tolerance — variant
   selection (autotuned block sizes, backend choice) must never change
   numerics. *)

module Ts = Tilelink_tensor

let sanity_bits_equal a b =
  let da = Ts.Tensor.data a and db = Ts.Tensor.data b in
  Array.length da = Array.length db
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       da db

let sanity_memories_equal ma mb =
  List.for_all
    (fun rank ->
      let names = Memory.buffers ma ~rank in
      names = Memory.buffers mb ~rank
      && List.for_all
           (fun name ->
             sanity_bits_equal
               (Memory.find ma ~rank ~name)
               (Memory.find mb ~rank ~name))
           names)
    (List.init (Memory.world_size ma) Fun.id)

let sanity check domains =
  let failures = ref 0 in
  let report name ok =
    Printf.printf "%-52s %s\n" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* --- gemm microkernel variants --- *)
  let gemm_shapes = [ (3, 5, 2); (8, 12, 6); (16, 16, 16); (17, 31, 13) ] in
  List.iter
    (fun (m, k, n) ->
      let a = Ts.Tensor.random ~seed:(m + k) (Ts.Shape.of_list [ m; k ]) in
      let b = Ts.Tensor.random ~seed:(k + n) (Ts.Shape.of_list [ k; n ]) in
      let reference = Ts.Linalg.gemm_naive a b in
      report
        (Printf.sprintf "gemm %dx%dx%d ikj vs naive" m k n)
        (sanity_bits_equal reference (Ts.Linalg.gemm a b));
      List.iter
        (fun block ->
          report
            (Printf.sprintf "gemm %dx%dx%d block=%d vs naive" m k n block)
            (sanity_bits_equal reference (Ts.Linalg.gemm ~block a b)))
        [ 2; 4; 8; 16; 32; 64 ])
    gemm_shapes;
  (* --- every shipped workload, sequential vs parallel --- *)
  let machine = Calib.test_machine in
  let run_case backend case =
    let memory, program = case () in
    let cluster =
      Cluster.create machine ~world_size:(Program.world_size program)
    in
    ignore (Runtime.run ~data:true ~memory ~backend cluster program);
    memory
  in
  List.iter
    (fun (name, case) ->
      let mem_seq = run_case `Sequential case in
      let mem_par = run_case (`Parallel domains) case in
      report
        (Printf.sprintf "%s seq vs par(%d)" name domains)
        (sanity_memories_equal mem_seq mem_par))
    (Suite.data_cases ());
  (* --- self-test: the comparator must trip on a flipped bit --- *)
  if check then begin
    let t = Ts.Tensor.random ~seed:3 (Ts.Shape.of_list [ 4; 4 ]) in
    let corrupt = Ts.Tensor.copy t in
    (Ts.Tensor.data corrupt).(5) <- (Ts.Tensor.data corrupt).(5) +. 1e-12;
    report "self-test: comparator detects flipped bit"
      (not (sanity_bits_equal t corrupt))
  end;
  if !failures > 0 then begin
    Printf.printf "%d sanity failure(s)\n" !failures;
    exit 1
  end
  else print_endline "all kernel variants and backends agree bit for bit"

let sanity_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also self-test the bitwise comparator on a deliberately \
             corrupted tensor.")
  in
  Cmd.v
    (Cmd.info "sanity"
       ~doc:
         "Bit-identity sweep: every gemm microkernel variant against the \
          scalar reference, and every shipped workload program sequential \
          vs parallel.")
    Term.(const sanity $ check_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report kernel world m k n =
  let cfg =
    config ~world ~binding:Design_space.Comm_on_dma ~comm_tile:512
      ~compute_tile:128 ~stages:2 ~ring:true
  in
  let program =
    match kernel with
    | `Ag_gemm ->
      Mlp.ag_gemm_program ~config:cfg { Mlp.m; k; n; world_size = world }
        ~spec_gpu:spec
    | `Gemm_rs ->
      Mlp.gemm_rs_program
        ~config:
          {
            cfg with
            Design_space.comm_order = Tile.Row_major;
            compute_order = Tile.Ring_prev_first { segments = world };
            comm_tile = (128, 2048);
            binding = Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
          }
        { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world }
        ~spec_gpu:spec
    | `Moe ->
      let moe =
        { Moe.tokens = m; hidden = k; intermediate = n; experts = 32;
          topk = 2; world_size = world }
      in
      Moe.part2_program moe (Moe.routing moe ~seed:17) ~spec_gpu:spec
  in
  let cluster = Cluster.create ~trace_enabled:true spec ~world_size:world in
  let result = Runtime.run cluster program in
  Printf.printf "makespan %.1f us; per-rank measured overlap:\n"
    result.Runtime.makespan;
  List.iter
    (fun r -> Format.printf "  %a@." Report.pp r)
    (Report.all_ranks (Cluster.trace cluster) ~world_size:world)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Simulate a kernel and print the measured per-rank overlap.")
    Term.(const report $ kernel_arg $ world_arg $ m_arg $ k_arg $ n_arg)

(* ------------------------------------------------------------------ *)
(* emit                                                                *)
(* ------------------------------------------------------------------ *)

let emit kernel world m k n tasks target =
  let cfg =
    config ~world ~binding:(Design_space.Comm_on_dma) ~comm_tile:512
      ~compute_tile:128 ~stages:2 ~ring:true
  in
  let program =
    match kernel with
    | `Ag_gemm ->
      Mlp.ag_gemm_program ~config:cfg { Mlp.m; k; n; world_size = world }
        ~spec_gpu:spec
    | `Gemm_rs ->
      Mlp.gemm_rs_program
        ~config:
          {
            cfg with
            Design_space.comm_order = Tile.Row_major;
            compute_order = Tile.Ring_prev_first { segments = world };
            comm_tile = (128, 2048);
            binding = Design_space.Comm_on_sm 20;
          }
        { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world }
        ~spec_gpu:spec
    | `Moe ->
      let moe =
        { Moe.tokens = m; hidden = k; intermediate = n; experts = 32;
          topk = 2; world_size = world }
      in
      Moe.part2_program moe (Moe.routing moe ~seed:17) ~spec_gpu:spec
  in
  (* Print the first [tasks] tasks of each role of rank 0: enough to
     read the generated fence discipline without drowning in text. *)
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.iter
    (fun role ->
      let truncated =
        { role with Program.tasks = take tasks role.Program.tasks }
      in
      print_string (Codegen.emit_role ~target truncated);
      if List.length role.Program.tasks > tasks then
        Printf.printf "// ... %d more tasks in this role\n"
          (List.length role.Program.tasks - tasks))
    (Program.plans program).(0);
  let stats = Codegen.stats_of_listing (Codegen.emit_rank program ~rank:0) in
  Printf.printf
    "// whole rank 0: %d acquire spins, %d release stores, %d cp.async, %d \
     put_nbi, %d get_nbi\n"
    stats.Codegen.acquires stats.Codegen.releases stats.Codegen.async_loads
    stats.Codegen.remote_puts stats.Codegen.remote_gets

let emit_cmd =
  let tasks_arg =
    Arg.(
      value & opt int 2
      & info [ "tasks" ] ~doc:"Tasks to print per role (rest summarized).")
  in
  let target_arg =
    Arg.(
      value
      & opt (enum [ ("ptx", Codegen.Ptx); ("tir", Codegen.Tir) ]) Codegen.Ptx
      & info [ "target" ] ~docv:"ptx|tir" ~doc:"Backend syntax to emit.")
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Print the generated device code of one overlapped kernel.")
    Term.(
      const emit $ kernel_arg $ world_arg $ m_arg $ k_arg $ n_arg $ tasks_arg
      $ target_arg)

(* ------------------------------------------------------------------ *)
(* attention                                                           *)
(* ------------------------------------------------------------------ *)

let attention world seq heads head_dim trace =
  let a =
    { Attention.batch_heads = heads; seq; head_dim; world_size = world;
      causal = false }
  in
  let cfg = { Attention.q_tile = 512; kv_tile = 2048 } in
  let cluster = Cluster.create ~trace_enabled:trace spec ~world_size:world in
  let tl =
    (Runtime.run cluster (Attention.program ~config:cfg a ~spec_gpu:spec))
      .Runtime.makespan
  in
  let torch = Attention_baselines.torch_time spec a in
  let ring = Attention_baselines.ring_attention_time spec a in
  Printf.printf
    "seq %d, %d heads: torch %.2f ms | ring %.2f ms | tilelink %.2f ms\n" seq
    heads (torch /. 1e3) (ring /. 1e3) (tl /. 1e3);
  if trace then print_rank0_timeline cluster

let attention_cmd =
  let seq_arg =
    Arg.(value & opt int 32768 & info [ "seq" ] ~doc:"Sequence length.")
  in
  let heads_arg =
    Arg.(value & opt int 32 & info [ "heads" ] ~doc:"Attention heads.")
  in
  let head_dim_arg =
    Arg.(value & opt int 128 & info [ "head-dim" ] ~doc:"Head dimension.")
  in
  Cmd.v
    (Cmd.info "attention" ~doc:"Simulate sequence-parallel attention.")
    Term.(
      const attention $ world_arg $ seq_arg $ heads_arg $ head_dim_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

module Obs = Tilelink_obs

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let print_wait_report metrics =
  Printf.printf "per-primitive wait latency (us):\n";
  Printf.printf "  %-10s %8s %10s %10s %10s %10s\n" "primitive" "count" "p50"
    "p95" "p99" "max";
  let row name label =
    match Obs.Metrics.summary metrics name with
    | None -> ()
    | Some s ->
      Printf.printf "  %-10s %8d %10.2f %10.2f %10.2f %10.2f\n" label s.count
        s.Obs.Metrics.p50 s.p95 s.p99 s.max
  in
  row "wait_us.pc" "pc";
  row "wait_us.peer" "peer";
  row "wait_us.host" "host";
  (match Obs.Metrics.merged_summary metrics ~prefix:"wait_us." with
  | None -> Printf.printf "  (no waits recorded)\n"
  | Some s ->
    Printf.printf "  %-10s %8d %10.2f %10.2f %10.2f %10.2f\n" "all" s.count
      s.p50 s.p95 s.p99 s.max);
  Printf.printf "counters:\n";
  List.iter
    (fun name ->
      Printf.printf "  %-24s %d\n" name
        (Option.get (Obs.Metrics.counter_value metrics name)))
    (Obs.Metrics.counter_names metrics)

(* Structural checks over the freshly written artifacts: both files
   must re-parse, the Perfetto trace must contain at least one
   notify->wait flow pair and one counter track, and the metrics dump
   must hold a non-empty wait histogram.  This is the smoke test the
   dev-check alias runs. *)
let check_artifacts ~metrics_path ~perfetto_path =
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let fail msg =
    Printf.eprintf "profile check FAILED: %s\n" msg;
    exit 2
  in
  let parse label path =
    match Obs.Json.parse (read path) with
    | Ok v -> v
    | Error msg -> fail (Printf.sprintf "%s is not valid JSON: %s" label msg)
  in
  let metrics_json = parse "metrics" metrics_path in
  let perfetto = parse "perfetto" perfetto_path in
  let events = Obs.Json.to_list perfetto in
  let phase ph e =
    match Obs.Json.member "ph" e with
    | Some (Obs.Json.Str s) -> s = ph
    | _ -> false
  in
  let flow_id ph =
    List.filter_map
      (fun e ->
        if phase ph e then
          Option.bind (Obs.Json.member "id" e) Obs.Json.to_float
        else None)
      events
  in
  let starts = flow_id "s" and finishes = flow_id "f" in
  let paired = List.exists (fun id -> List.mem id finishes) starts in
  if not paired then fail "no notify->wait flow event pair in Perfetto trace";
  if not (List.exists (phase "C") events) then
    fail "no counter track in Perfetto trace";
  let wait_histogram =
    match Obs.Json.member "histograms" metrics_json with
    | Some (Obs.Json.Obj fields) ->
      List.exists
        (fun (name, v) ->
          String.length name >= 8
          && String.sub name 0 8 = "wait_us."
          &&
          match Obs.Json.member "count" v with
          | Some (Obs.Json.Num c) -> c > 0.0
          | _ -> false)
        fields
    | _ -> false
  in
  if not wait_histogram then
    fail "metrics dump has no non-empty wait_us.* histogram";
  Printf.printf "profile check: ok (flow pairs, counter tracks, wait \
                 histograms all present)\n"

let profile workload world m k n out_prefix check critical_path min_level =
  (* One full instrumented run behind a closure: the critical-path
     determinism check replays it and compares rendered output. *)
  let run () =
    let telemetry = Obs.Telemetry.create () in
    let cfg =
      config ~world ~binding:Design_space.Comm_on_dma ~comm_tile:512
        ~compute_tile:128 ~stages:2 ~ring:true
    in
    let name, (cluster, result) =
      match workload with
      | `Mlp ->
        ( "mlp",
          Mlp.profile_ag_gemm ~config:cfg ~telemetry
            { Mlp.m; k; n; world_size = world }
            ~spec_gpu:spec )
      | `Gemm_rs ->
        ( "gemm-rs",
          Mlp.profile_gemm_rs
            ~config:
              {
                cfg with
                Design_space.comm_order = Tile.Row_major;
                compute_order = Tile.Ring_prev_first { segments = world };
                comm_tile = (128, 2048);
              }
            ~telemetry
            { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world }
            ~spec_gpu:spec )
      | `Moe ->
        let moe =
          {
            Moe.tokens = m;
            hidden = k;
            intermediate = n;
            experts = 32;
            topk = 2;
            world_size = world;
          }
        in
        ( "moe",
          Moe.profile_part1 ~telemetry moe (Moe.routing moe ~seed:17)
            ~spec_gpu:spec )
    in
    (name, telemetry, cluster, result)
  in
  let name, telemetry, cluster, result = run () in
  let metrics = Obs.Telemetry.metrics telemetry in
  let journal = Obs.Telemetry.journal telemetry in
  let makespan = result.Tilelink_core.Runtime.makespan in
  (* Causal profile of a finished run: span list -> attribution buckets
     + extracted critical path.  Shared by the report, the artifacts,
     and the --check validations. *)
  let causal_profile ~makespan telemetry =
    let spans = Obs.Span.spans (Obs.Telemetry.spans telemetry) in
    ( Obs.Attribution.of_spans ~makespan spans,
      Obs.Critpath.extract ~makespan spans )
  in
  let critpath_json (attribution, critpath) =
    Obs.Json.to_string ~indent:true
      (Obs.Json.Obj
         [
           ("workload", Obs.Json.Str name);
           ("attribution", Obs.Attribution.to_json attribution);
           ( "critical_path",
             match critpath with
             | None -> Obs.Json.Null
             | Some cp -> Obs.Critpath.to_json cp );
         ])
  in
  let attribution, critpath = causal_profile ~makespan telemetry in
  Printf.printf "%s: makespan %.1f us, %d signal notifies, journal %d \
                 events (%d dropped)\n"
    name makespan result.Tilelink_core.Runtime.notifies
    (Obs.Journal.length journal)
    (Obs.Journal.dropped journal);
  print_wait_report metrics;
  Printf.printf "per-rank overlap:\n";
  List.iter
    (fun r -> Format.printf "  %a@." Report.pp r)
    (Report.all_ranks (Cluster.trace cluster) ~world_size:world);
  if critical_path then begin
    print_string (Obs.Attribution.to_string attribution);
    match critpath with
    | None -> Printf.printf "critical path: (no spans recorded)\n"
    | Some cp ->
      Printf.printf "critical path: %d steps, tail slack %.1f us\n"
        (List.length cp.Obs.Critpath.path)
        cp.Obs.Critpath.tail_slack;
      Printf.printf "  per-rank blame (charged us on the path):\n";
      List.iter
        (fun (rank, us) -> Printf.printf "    rank %-3d %10.1f\n" rank us)
        (Obs.Critpath.rank_blame cp);
      let keys = Obs.Critpath.key_blame cp in
      if keys <> [] then begin
        Printf.printf "  per-channel blame (blocked us on the path):\n";
        List.iter
          (fun (key, us) -> Printf.printf "    %-24s %10.1f\n" key us)
          keys
      end
  end;
  let prefix =
    match out_prefix with Some p -> p | None -> "profile_" ^ name
  in
  let metrics_path = prefix ^ ".metrics.json" in
  let prom_path = prefix ^ ".prom" in
  let perfetto_path = prefix ^ ".perfetto.json" in
  write_file metrics_path
    (Obs.Json.to_string ~indent:true (Obs.Metrics.to_json metrics));
  write_file prom_path (Obs.Metrics.to_prometheus metrics);
  let extra =
    match critpath with
    | Some cp when critical_path -> Obs.Critpath.perfetto_events cp
    | _ -> []
  in
  write_file perfetto_path
    (Obs.Perfetto.export_string ?min_level ~extra
       ~trace:(Cluster.trace cluster) ~journal ());
  Printf.printf "wrote %s, %s, %s (open the last in \
                 https://ui.perfetto.dev)\n"
    metrics_path prom_path perfetto_path;
  if critical_path then begin
    let critpath_path = prefix ^ ".critpath.json" in
    write_file critpath_path (critpath_json (attribution, critpath));
    Printf.printf "wrote %s (attribution + critical path)\n" critpath_path
  end;
  if check then begin
    check_artifacts ~metrics_path ~perfetto_path;
    if critical_path then begin
      let fail msg =
        Printf.eprintf "profile check FAILED: %s\n" msg;
        exit 2
      in
      if not (Obs.Attribution.conserved attribution) then
        fail
          (Printf.sprintf
             "attribution buckets sum to %.3f us but makespan is %.3f us"
             (Obs.Attribution.bucket_sum attribution)
             makespan);
      (match critpath with
      | None -> fail "no spans recorded despite telemetry being enabled"
      | Some _ -> ());
      (* Byte-determinism: a second identical run must render the same
         attribution + critical-path JSON. *)
      let _, telemetry2, _, result2 = run () in
      let rendered2 =
        critpath_json
          (causal_profile ~makespan:result2.Tilelink_core.Runtime.makespan
             telemetry2)
      in
      if critpath_json (attribution, critpath) <> rendered2 then
        fail "critical-path output not byte-identical across two runs";
      Printf.printf
        "profile check: ok (attribution conserved, critical path \
         deterministic)\n"
    end
  end

let profile_cmd =
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("mlp", `Mlp); ("gemm-rs", `Gemm_rs); ("moe", `Moe) ])
          `Mlp
      & info [ "workload" ] ~docv:"mlp|gemm-rs|moe"
          ~doc:"Workload to profile.")
  in
  let out_prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-prefix" ] ~docv:"PREFIX"
          ~doc:
            "Artifact path prefix (default profile_<workload>); writes \
             PREFIX.metrics.json, PREFIX.prom, PREFIX.perfetto.json.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-parse the written artifacts and fail unless flow pairs, \
             counter tracks and wait histograms are present.  With \
             $(b,--critical-path), additionally require attribution \
             conservation and byte-identical output across two runs.")
  in
  let critical_path_arg =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Extract the causal critical path: print the makespan \
             attribution (conserved buckets + overlap efficiency), per-rank \
             and per-channel blame, write PREFIX.critpath.json, and overlay \
             the path as a flow-annotated track in the Perfetto export.")
  in
  let min_level_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("debug", Obs.Journal.Debug);
                  ("info", Obs.Journal.Info);
                  ("warn", Obs.Journal.Warn);
                  ("error", Obs.Journal.Error);
                ]))
          None
      & info [ "min-level" ] ~docv:"debug|info|warn|error"
          ~doc:
            "Severity floor for instant-event marks in the Perfetto export \
             (flow arrows and counter tracks are always reconstructed from \
             debug-level events).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload with telemetry enabled and dump the metrics \
          report, Prometheus text, and an enriched Perfetto trace.")
    Term.(
      const profile $ workload_arg $ world_arg $ m_arg $ k_arg $ n_arg
      $ out_prefix_arg $ check_arg $ critical_path_arg $ min_level_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

module Harness = Tilelink_chaos.Harness

let chaos_run seed trials workload jobs no_retry policy crash_ranks topology
    out perfetto_path check =
  let retry = not no_retry in
  (* Crashes are only recoverable under Failover; upgrade the default
     policy so `--crash-ranks 1` alone does the expected thing. *)
  let policy =
    if crash_ranks > 0 && policy = Tilelink_core.Chaos.Degrade then
      Tilelink_core.Chaos.Failover
    else policy
  in
  let pool =
    if jobs > 1 then
      Some (Tilelink_exec.Pool.create ~domains:jobs ())
    else None
  in
  let run () =
    Harness.run_trials ?pool ~retry ~policy ~crash_ranks ?topology ~workload
      ~seed ~trials ()
  in
  let summary = run () in
  let json = Harness.summary_to_string summary in
  (match topology with
  | Some topo -> Printf.printf "topology: %s\n" (Topology.describe topo)
  | None -> ());
  Printf.printf
    "chaos %s seed %d: %d trials — %d clean, %d recovered, %s%d degraded, %d \
     stalled\n"
    (Harness.workload_to_string workload)
    seed trials summary.Harness.s_clean summary.Harness.s_recovered
    (if crash_ranks > 0 || summary.Harness.s_failed_over > 0 then
       Printf.sprintf "%d failed over, " summary.Harness.s_failed_over
     else "")
    summary.Harness.s_degraded summary.Harness.s_stalled;
  let latencies = List.sort compare summary.Harness.s_recovery_latencies in
  (if latencies <> [] then
     let pct p = Tilelink_sim.Stats.percentile p latencies in
     Printf.printf
       "recovery latency: %d signals, p50 %.1f us, p95 %.1f us, p99 %.1f us\n"
       (List.length latencies) (pct 50.0) (pct 95.0) (pct 99.0));
  let fo_latencies = List.sort compare summary.Harness.s_failover_latencies in
  (if fo_latencies <> [] then
     let pct p = Tilelink_sim.Stats.percentile p fo_latencies in
     Printf.printf
       "failover latency: %d crashes, p50 %.1f us, p95 %.1f us, p99 %.1f us\n"
       (List.length fo_latencies) (pct 50.0) (pct 95.0) (pct 99.0));
  if summary.Harness.s_cross_island_replays > 0 then
    Printf.printf "cross-island replays: %d\n"
      summary.Harness.s_cross_island_replays;
  List.iter
    (fun t ->
      Printf.printf "  trial %d: %-9s overlap %.2f ideal %.1f us total %.1f \
                     us%s%s\n"
        t.Harness.index
        (Harness.classification_to_string t.Harness.classification)
        t.Harness.achieved_overlap t.Harness.ideal_us t.Harness.total_us
        (if t.Harness.numerics_ok then "" else " NUMERICS MISMATCH")
        (match t.Harness.stall with
        | Some s ->
          Printf.sprintf " (stalled on %s, producer rank %d)" s.Harness.si_key
            s.Harness.si_owner
        | None ->
          if t.Harness.failed_over_ranks = [] then ""
          else
            Printf.sprintf " (ranks %s crashed; replayed %d/%d tiles)"
              (String.concat ","
                 (List.map
                    (fun (r, _) -> string_of_int r)
                    t.Harness.failed_over_ranks))
              t.Harness.replayed_tiles t.Harness.total_tiles))
    summary.Harness.s_trials;
  let bad =
    List.filter
      (fun t ->
        (not t.Harness.numerics_ok)
        && t.Harness.classification <> Harness.Stalled)
      summary.Harness.s_trials
  in
  if bad <> [] then begin
    Printf.eprintf "chaos FAILED: %d completed trial(s) with wrong numerics\n"
      (List.length bad);
    exit 2
  end;
  (match out with
  | Some path ->
    write_file path json;
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match perfetto_path with
  | Some path ->
    let _trial, trace, telemetry =
      Harness.profile_trial ~retry ~policy ~crash_ranks ?topology ~workload
        ~seed ~index:0 ()
    in
    write_file path
      (Obs.Perfetto.export_string ~trace
         ~journal:(Obs.Telemetry.journal telemetry) ());
    Printf.printf "wrote %s (fault/retry/recovery instants marked)\n" path
  | None -> ());
  if check then begin
    let json2 = Harness.summary_to_string (run ()) in
    if json <> json2 then begin
      Printf.eprintf
        "chaos check FAILED: same seed produced different summary JSON\n";
      exit 2
    end;
    Printf.printf
      "chaos check: ok (summary JSON byte-identical across two runs)\n"
  end

let chaos_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Chaos seed.")
  in
  let trials_arg =
    Arg.(
      value & opt int 8
      & info [ "trials" ] ~docv:"K" ~doc:"Independent seeded trials to run.")
  in
  let workload_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("mlp", Harness.Mlp_ag_gemm);
               ("moe", Harness.Moe_part2);
               ("attention", Harness.Attention_ag);
             ])
          Harness.Mlp_ag_gemm
      & info [ "workload" ] ~docv:"mlp|moe|attention"
          ~doc:"Workload to inject faults into.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:"Worker domains for the trial sweep (1 = sequential).")
  in
  let no_retry_arg =
    Arg.(
      value & flag
      & info [ "no-retry" ]
          ~doc:"Disable watchdog retries; overdue waits go straight to the \
                policy action.")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("degrade", Tilelink_core.Chaos.Degrade);
               ("failstop", Tilelink_core.Chaos.Fail_stop);
               ("failover", Tilelink_core.Chaos.Failover) ])
          Tilelink_core.Chaos.Degrade
      & info [ "policy" ] ~docv:"degrade|failstop|failover"
          ~doc:"What the watchdog does once retries are exhausted; failover \
                additionally remaps crashed ranks onto the survivors.")
  in
  let crash_ranks_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-ranks" ] ~docv:"N"
          ~doc:"Force N seeded permanent rank crashes per trial; implies the \
                failover policy unless one is given explicitly.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the summary JSON here.")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:"Re-run trial 0 with tracing and write a Perfetto trace with \
                fault and recovery marks.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Run the sweep twice and fail unless the summary JSON is \
                byte-identical.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run seeded fault-injection trials through a workload, validate \
          numerics against fault-free runs, and classify each trial as \
          clean, recovered, failed over, degraded, or stalled.")
    Term.(
      const chaos_run $ seed_arg $ trials_arg $ workload_arg $ jobs_arg
      $ no_retry_arg $ policy_arg $ crash_ranks_arg $ topology_arg $ out_arg
      $ perfetto_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

module Serve = Tilelink_serve

(* Trace-driven serving over the simulated cluster: open-loop arrivals
   through the continuous batcher, with admission control, degradation
   tiers and (optionally) a seeded mid-trace rank crash.  --check runs
   the serve twice and demands a byte-identical, conservation-clean
   report. *)
let serve_run trace_kind rate burst requests seed prompt_mean decode_mean
    world head_dim slo_ttft slo_tpot queue_capacity max_batch kv_capacity
    timeout_us chaos_seed crash_ranks topology out perfetto_path check =
  (* A topology fixes the world: its natural size, not --world. *)
  let world =
    match topology with
    | Some topo -> Topology.natural_world topo
    | None -> world
  in
  let trace =
    match trace_kind with
    | "poisson" ->
      Serve.Trace_gen.generate ~prompt_mean ~decode_mean ~seed ~requests
        (Serve.Trace_gen.Poisson { rate_rps = rate })
    | "bursty" ->
      Serve.Trace_gen.generate ~prompt_mean ~decode_mean ~seed ~requests
        (Serve.Trace_gen.Bursty
           { rate_rps = rate; burst; on_fraction = 0.25 })
    | path -> (
      match Serve.Trace_gen.load_trace path with
      | Ok reqs -> reqs
      | Error msg ->
        Printf.eprintf "serve: cannot load trace %s: %s\n" path msg;
        exit 2)
  in
  let chaos =
    if crash_ranks > 0 then
      Some
        {
          Serve.Server.ch_seed = Option.value chaos_seed ~default:seed;
          ch_crash_ranks = crash_ranks;
        }
    else None
  in
  let config =
    {
      Serve.Server.machine = spec;
      topology;
      world_size = world;
      head_dim;
      slo = { Serve.Slo.ttft_us = slo_ttft; tpot_us = slo_tpot };
      queue_capacity;
      max_batch;
      kv_capacity;
      timeout_us;
      chaos;
    }
  in
  let serve ?telemetry () = Serve.Server.run ?telemetry config trace in
  let telemetry =
    if perfetto_path <> None then Some (Obs.Telemetry.create ()) else None
  in
  (match topology with
  | Some topo -> Printf.printf "topology: %s\n" (Topology.describe topo)
  | None -> ());
  let report = serve ?telemetry () in
  let json = Serve.Server.report_to_string report in
  Printf.printf
    "serve: %d offered  %d completed  %d shed (%d queue, %d deadline, %d \
     timeout)  %d in-flight\n"
    report.Serve.Server.r_offered report.Serve.Server.r_completed
    (report.Serve.Server.r_shed_queue_full
    + report.Serve.Server.r_shed_deadline
    + report.Serve.Server.r_shed_timeout)
    report.Serve.Server.r_shed_queue_full report.Serve.Server.r_shed_deadline
    report.Serve.Server.r_shed_timeout report.Serve.Server.r_in_flight;
  Printf.printf
    "  ttft p50/p99 %.1f/%.1f us  tpot p50/p99 %.1f/%.1f us  goodput %.1f \
     rps (%d/%d in SLO)\n"
    report.Serve.Server.r_ttft.Serve.Slo.d_p50
    report.Serve.Server.r_ttft.Serve.Slo.d_p99
    report.Serve.Server.r_tpot.Serve.Slo.d_p50
    report.Serve.Server.r_tpot.Serve.Slo.d_p99
    report.Serve.Server.r_goodput_rps report.Serve.Server.r_slo_met
    report.Serve.Server.r_completed;
  Printf.printf
    "  %d steps (%d faulted, %d fallback)  %d retries  %d failovers  %d \
     tier changes  world %d->%d\n"
    report.Serve.Server.r_steps report.Serve.Server.r_faulted_steps
    report.Serve.Server.r_fallback_steps report.Serve.Server.r_retries
    report.Serve.Server.r_failovers report.Serve.Server.r_tier_changes world
    report.Serve.Server.r_world_end;
  List.iter
    (fun (tier, us) ->
      if us > 0. then Printf.printf "  tier %-10s %12.1f us\n" tier us)
    report.Serve.Server.r_tier_us;
  (match out with
  | Some path ->
    write_file path json;
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match (perfetto_path, telemetry) with
  | Some path, Some tel ->
    write_file path
      (Obs.Perfetto.export_string
         ~trace:(Tilelink_sim.Trace.create ())
         ~journal:(Obs.Telemetry.journal tel) ());
    Printf.printf "wrote %s (shed and tier-change instants marked)\n" path
  | _ -> ());
  if check then begin
    if not (Serve.Server.conservation_ok report) then begin
      Printf.eprintf
        "serve check FAILED: request conservation violated (offered %d <> \
         completed %d + shed %d + failed %d + in-flight %d)\n"
        report.Serve.Server.r_offered report.Serve.Server.r_completed
        (report.Serve.Server.r_shed_queue_full
        + report.Serve.Server.r_shed_deadline
        + report.Serve.Server.r_shed_timeout)
        report.Serve.Server.r_failed report.Serve.Server.r_in_flight;
      exit 2
    end;
    let json2 = Serve.Server.report_to_string (serve ()) in
    if json <> json2 then begin
      Printf.eprintf
        "serve check FAILED: same seed produced different report JSON\n";
      exit 2
    end;
    Printf.printf
      "serve check: ok (conserved; report byte-identical across two runs)\n"
  end

let serve_cmd =
  let trace_arg =
    Arg.(
      value & opt string "poisson"
      & info [ "trace" ] ~docv:"poisson|bursty|FILE"
          ~doc:
            "Arrival process: seeded Poisson, seeded bursty (two-state \
             MMPP), or a replayed CSV trace (arrival_us,prompt,decode per \
             line).")
  in
  let rate_arg =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"RPS" ~doc:"Mean arrival rate, requests/s.")
  in
  let burst_arg =
    Arg.(
      value & opt float 8.
      & info [ "burst" ] ~docv:"X"
          ~doc:"Bursty trace: ON-state rate multiplier (>= 1).")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to generate.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Trace generation seed.")
  in
  let prompt_mean_arg =
    Arg.(
      value & opt int 128
      & info [ "prompt-mean" ] ~docv:"TOKENS" ~doc:"Mean prompt length.")
  in
  let decode_mean_arg =
    Arg.(
      value & opt int 16
      & info [ "decode-mean" ] ~docv:"TOKENS" ~doc:"Mean output length.")
  in
  let head_dim_arg =
    Arg.(
      value & opt int 64
      & info [ "head-dim" ] ~docv:"D" ~doc:"Attention head dimension.")
  in
  let slo_ttft_arg =
    Arg.(
      value & opt float 50_000.
      & info [ "slo-ttft-us" ] ~docv:"US"
          ~doc:"Time-to-first-token objective.")
  in
  let slo_tpot_arg =
    Arg.(
      value & opt float 2_000.
      & info [ "slo-tpot-us" ] ~docv:"US"
          ~doc:"Per-output-token latency objective.")
  in
  let queue_capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Admission queue bound; overflow is shed (backpressure).")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 16
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Full-tier batch cap; degraded tiers halve it.")
  in
  let kv_capacity_arg =
    Arg.(
      value & opt int 8192
      & info [ "kv-capacity" ] ~docv:"TOKENS"
          ~doc:"Resident KV-cache budget across the batch.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 1_000_000.
      & info [ "timeout-us" ] ~docv:"US"
          ~doc:"Per-request server-side timeout.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:"Seed for the crash schedule (defaults to --seed).")
  in
  let crash_ranks_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-ranks" ] ~docv:"N"
          ~doc:
            "Crash N seeded ranks mid-trace; the serve continues on the \
             survivors.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the report JSON here.")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:"Write a Perfetto trace with shed/tier-change instants.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Fail unless the report conserves requests and is \
             byte-identical across two runs.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a trace of requests through the continuous batcher with \
          admission control, SLO-aware degradation, and optional seeded \
          rank crashes.")
    Term.(
      const serve_run $ trace_arg $ rate_arg $ burst_arg $ requests_arg
      $ seed_arg $ prompt_mean_arg $ decode_mean_arg $ world_arg
      $ head_dim_arg $ slo_ttft_arg $ slo_tpot_arg $ queue_capacity_arg
      $ max_batch_arg $ kv_capacity_arg $ timeout_arg $ chaos_seed_arg
      $ crash_ranks_arg $ topology_arg $ out_arg $ perfetto_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

(* The static sweep only *builds* programs — no simulation — so it can
   afford to cover every shipped workload across a rank and tile-shape
   sweep in well under a second. *)
let verify_suite () = Suite.programs ()

(* Hand-built pathological programs: the self-test's positive controls
   for the two checks no Fault transform exercises directly. *)
let synthetic_deadlock () =
  let task rank peer =
    {
      Program.label = Printf.sprintf "sync%d" rank;
      instrs =
        [
          Instr.Wait
            {
              target = Instr.Peer { src = peer; dst = rank; channel = 0 };
              threshold = 1;
              guards = [];
            };
          Instr.Notify
            {
              target = Instr.Peer { src = rank; dst = peer; channel = 0 };
              amount = 1;
              releases = [];
            };
        ];
    }
  in
  Program.create ~name:"synthetic_deadlock" ~world_size:2 ~pc_channels:1
    ~peer_channels:1
    [|
      [
        {
          Program.role_name = "sync";
          resource = Program.Sm_partition 1;
          lane = Tilelink_sim.Trace.Comm_sm;
          tasks = [ task 0 1 ];
        };
      ];
      [
        {
          Program.role_name = "sync";
          resource = Program.Sm_partition 1;
          lane = Tilelink_sim.Trace.Comm_sm;
          tasks = [ task 1 0 ];
        };
      ];
    |]

let synthetic_epoch_reuse () =
  let pc = Instr.Pc { rank = 0; channel = 0 } in
  Program.create ~name:"synthetic_epoch_reuse" ~world_size:1 ~pc_channels:1
    ~peer_channels:1
    [|
      [
        {
          Program.role_name = "producer";
          resource = Program.Sm_partition 1;
          lane = Tilelink_sim.Trace.Comm_sm;
          tasks =
            [
              {
                Program.label = "p0";
                instrs =
                  [
                    Instr.Notify { target = pc; amount = 1; releases = [] };
                    Instr.Notify { target = pc; amount = 1; releases = [] };
                  ];
              };
            ];
        };
        {
          Program.role_name = "consumer";
          resource = Program.Sm_partition 1;
          lane = Tilelink_sim.Trace.Compute_sm;
          tasks =
            [
              {
                Program.label = "c0";
                instrs =
                  [ Instr.Wait { target = pc; threshold = 1; guards = [] } ];
              };
            ];
        };
      ];
    |]

let diag_is_structured (d : Analyzer.diag) =
  String.length d.Analyzer.key > 0 && d.Analyzer.rank >= 0

let verify_check ~seed suite =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let expect_kind name program kind_name =
    let report = Analyzer.analyze program in
    let errors = Analyzer.errors report in
    match
      List.filter
        (fun d -> Analyzer.kind_name d.Analyzer.kind = kind_name)
        errors
    with
    | [] -> fail "%s: expected a %s error, got none" name kind_name
    | d :: _ ->
      if not (diag_is_structured d) then
        fail "%s: %s diagnostic lacks key/rank structure" name kind_name
  in
  expect_kind "synthetic_deadlock" (synthetic_deadlock ()) "deadlock_cycle";
  expect_kind "synthetic_epoch_reuse" (synthetic_epoch_reuse ()) "epoch_reuse";
  (* One representative per workload family: mutate its protocol and
     demand a structured diagnostic for every seeded mutation. *)
  let representatives =
    [
      "mlp_ag_gemm_pull/w2/t2";
      "mlp_ag_gemm_push/w2/t2";
      "mlp_gemm_rs/w2";
      "moe_part1/w2";
      "moe_part2/w2";
      "attention/w2";
      "ring_attention/w2";
      "ep_moe/w2";
    ]
  in
  List.iter
    (fun name ->
      match List.assoc_opt name suite with
      | None -> fail "%s: missing from the sweep" name
      | Some program ->
        let corpus = Analyzer.mutation_corpus ~seed program in
        let mutation_names = List.map fst corpus in
        List.iter
          (fun expected ->
            if not (List.mem expected mutation_names) then
              fail "%s: mutation %s not applicable" name expected)
          [
            "dropped_notify";
            "swapped_rank";
            "wait_epoch_off_by_one";
            "notify_epoch_off_by_one";
            "unsafe_hoist";
          ];
        List.iter
          (fun (mutation, mutant) ->
            match Analyzer.errors (Analyzer.analyze mutant) with
            | [] -> fail "%s + %s: mutation not flagged" name mutation
            | d :: _ ->
              if not (diag_is_structured d) then
                fail "%s + %s: diagnostic lacks key/rank structure" name
                  mutation)
          corpus)
    representatives;
  List.rev !failures

let verify json_path check_flag seed =
  let suite = verify_suite () in
  let reports = List.map (fun (name, p) -> (name, Analyzer.analyze p)) suite in
  let dirty =
    List.filter (fun (_, r) -> not (Analyzer.ok r)) reports
  in
  Printf.printf "%-28s %5s %8s %6s %6s %5s  %s\n" "program" "keys" "notifies"
    "waits" "errors" "warns" "status";
  List.iter
    (fun (name, r) ->
      let errs = List.length (Analyzer.errors r) in
      let warns =
        List.length
          (List.filter
             (fun d -> d.Analyzer.severity = Analyzer.Warning)
             r.Analyzer.diags)
      in
      Printf.printf "%-28s %5d %8d %6d %6d %5d  %s\n" name r.Analyzer.keys
        r.Analyzer.notifies r.Analyzer.waits errs warns
        (if errs = 0 then "ok" else "FAIL"))
    reports;
  List.iter
    (fun (name, r) ->
      List.iter
        (fun d ->
          Printf.printf "  %s: %s\n" name (Analyzer.diag_to_string d))
        (Analyzer.errors r))
    dirty;
  let check_failures = if check_flag then verify_check ~seed suite else [] in
  if check_flag then begin
    List.iter (Printf.printf "check FAIL: %s\n") check_failures;
    if check_failures = [] then
      Printf.printf
        "check ok: clean programs accepted; synthetic deadlock/epoch-reuse \
         and all seeded mutations flagged with structured diagnostics\n"
  end;
  (match json_path with
  | None -> ()
  | Some path ->
    let json =
      Tilelink_obs.Json.Obj
        [
          ( "programs",
            Tilelink_obs.Json.List
              (List.map
                 (fun (name, r) ->
                   match Analyzer.report_to_json r with
                   | Tilelink_obs.Json.Obj fields ->
                     Tilelink_obs.Json.Obj
                       (("name", Tilelink_obs.Json.Str name) :: fields)
                   | other -> other)
                 reports) );
          ( "check",
            if not check_flag then Tilelink_obs.Json.Null
            else
              Tilelink_obs.Json.Obj
                [
                  ("ok", Tilelink_obs.Json.Bool (check_failures = []));
                  ( "failures",
                    Tilelink_obs.Json.List
                      (List.map
                         (fun s -> Tilelink_obs.Json.Str s)
                         check_failures) );
                ] );
        ]
    in
    let rendered = Tilelink_obs.Json.to_string ~indent:true json in
    if path = "-" then print_endline rendered
    else begin
      let oc = open_out path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "wrote analyzer report to %s\n" path
    end);
  if dirty <> [] || check_failures <> [] then exit 1

let verify_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the per-program analyzer reports as JSON ('-' for \
                stdout).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-test: require every clean program to pass, and every \
             seeded protocol mutation (dropped notify, swapped rank, epoch \
             off-by-one, unsafe hoist) plus synthetic deadlock/epoch-reuse \
             programs to be flagged with structured diagnostics.")
  in
  let seed_arg =
    Arg.(
      value & opt int 17
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the mutation corpus.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the whole-program protocol analyzer over all shipped workloads \
          across a rank and tile-shape sweep.")
    Term.(const verify $ json_arg $ check_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

(* Auto-overlap planner: derive the Pc protocol for an operator graph
   instead of picking a hand-written kernel.  --check runs the search
   twice on fresh state and byte-compares the winners (exit 2 on
   divergence); --emit prints the winning synthesized program. *)

let plan_summary (p : Planner.plan) =
  Printf.sprintf "%s|%.6f" (Planner.fingerprint p.Planner.p_candidate)
    p.Planner.p_time

let plan_json ~family ~graph (p : Planner.plan) =
  let module J = Tilelink_obs.Json in
  let o = p.Planner.p_outcome in
  J.Obj
    [
      ("workload", J.Str family);
      ("graph", J.Str (Planner.graph_fingerprint graph));
      ("winner", J.Str (Planner.candidate_to_string p.Planner.p_candidate));
      ("winner_fingerprint", J.Str (Planner.fingerprint p.Planner.p_candidate));
      ("makespan_us", J.Num p.Planner.p_time);
      ( "exposed_comm_us",
        match p.Planner.p_exposed_comm_us with
        | Some x -> J.Num x
        | None -> J.Null );
      ("evaluated", J.Num (float_of_int (List.length o.Tune.evaluated)));
      ("skipped", J.Num (float_of_int o.Tune.skipped));
      ("skipped_build", J.Num (float_of_int o.Tune.skipped_build));
      ("skipped_race", J.Num (float_of_int o.Tune.skipped_race));
      ("cache_hits", J.Num (float_of_int o.Tune.cache_hits));
      ("cache_misses", J.Num (float_of_int o.Tune.cache_misses));
    ]

let plan family m k n world seed jobs cache_path json_path check_flag emit_flag
    =
  let graph, _memory =
    match Planned.family_of_string family with
    | Some fam -> Planned.build fam ~m ~k ~n ~world ~seed
    | None ->
      Printf.eprintf "tilelink plan: unknown workload %S (one of %s)\n" family
        (String.concat ", " Planned.family_names);
      exit 2
  in
  let search ~cache () =
    let pool = make_pool jobs in
    let result =
      Planner.search ?pool ~cache graph ~spec_gpu:spec
        ~make_cluster:(fun () -> Cluster.create spec ~world_size:world)
        ()
    in
    (result, pool)
  in
  let cache = make_cache cache_path in
  let result, pool = search ~cache () in
  match result with
  | None ->
    Printf.eprintf
      "tilelink plan: no candidate both built and passed the analyzer\n";
    exit 1
  | Some p ->
    let o = p.Planner.p_outcome in
    Printf.printf "plan %s: best %.1f us%s\n   [%s]\n" family p.Planner.p_time
      (match p.Planner.p_exposed_comm_us with
      | Some x -> Printf.sprintf " (%.1f us comm exposed)" x
      | None -> "")
      (Planner.candidate_to_string p.Planner.p_candidate);
    Printf.printf
      "   graph %s\n   %d evaluated, %d skipped (build %d, race %d), cache %d \
       hits / %d misses\n"
      (Planner.graph_fingerprint graph)
      (List.length o.Tune.evaluated)
      o.Tune.skipped o.Tune.skipped_build o.Tune.skipped_race o.Tune.cache_hits
      o.Tune.cache_misses;
    print_pool_stats pool;
    save_cache cache;
    if check_flag then begin
      (* A second search on fresh in-memory state must reproduce the
         winner byte for byte, whatever the pool width. *)
      match search ~cache:(Exec.Cache.create ()) () with
      | None, _ ->
        Printf.eprintf "plan check FAIL: second search found no plan\n";
        exit 2
      | Some p2, _ ->
        if plan_summary p <> plan_summary p2 then begin
          Printf.eprintf "plan check FAIL: %s <> %s\n" (plan_summary p)
            (plan_summary p2);
          exit 2
        end;
        Printf.printf "plan check ok: winner stable across searches\n"
    end;
    (match json_path with
    | None -> ()
    | Some path ->
      let rendered =
        Tilelink_obs.Json.to_string ~indent:true (plan_json ~family ~graph p)
      in
      if path = "-" then print_endline rendered
      else begin
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Printf.printf "wrote plan to %s\n" path
      end);
    if emit_flag then Format.printf "%a@." Program.pp p.Planner.p_program

let plan_cmd =
  let workload_arg =
    Arg.(
      value
      & opt string "mlp"
      & info [ "workload" ] ~docv:"FAMILY"
          ~doc:
            "Operator graph family: mlp (AllGather+GEMM), softmax \
             (AllGather+row softmax), moe (AllGather feeding gate and up \
             projections), fused (GEMM and softmax sharing one gather).")
  in
  let seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for workload buffers.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the winning plan and search statistics as JSON ('-' \
                for stdout).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Determinism gate: search twice on fresh state and require \
             byte-identical winners (exit 2 on divergence).")
  in
  let emit_arg =
    Arg.(
      value & flag
      & info [ "emit" ] ~doc:"Print the winning synthesized program.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Derive an overlapped Pc protocol for an operator graph: enumerate \
          push/pull schedules over the decoupled design space, prune with \
          the protocol analyzer, score under the simulator.")
    Term.(
      const plan $ workload_arg $ m_arg $ k_arg $ n_arg $ world_arg $ seed_arg
      $ jobs_arg $ cache_path_arg $ json_arg $ check_arg $ emit_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "TileLink reproduction: overlapped kernels on a simulated GPU cluster" in
  exit
    (try
       let code =
         Cmd.eval ~catch:false
           (Cmd.group
            (Cmd.info "tilelink" ~doc)
            [
              info_cmd;
              simulate_cmd;
              tune_cmd;
              plan_cmd;
              autotune_cmd;
              ablation_cmd;
              validate_cmd;
              sanity_cmd;
              attention_cmd;
              emit_cmd;
              report_cmd;
              profile_cmd;
              chaos_cmd;
              serve_cmd;
              verify_cmd;
            ])
       in
       (* A bad flag value (unknown --topology, --policy, ...) is plain
          user error on every subcommand: cmdliner already printed the
          one-line usage hint, so just normalize its CLI-error status
          to the conventional 2. *)
       if code = Cmd.Exit.cli_error then 2 else code
     with
    (* A structured flag-combination rejection is user error, not a
       crash: render backend/feature/reason/hint without a backtrace. *)
    | Runtime.Unsupported u ->
      Printf.eprintf "tilelink: %s\n" (Runtime.unsupported_to_string u);
      3
    (* Out-of-range numeric flags surface as Invalid_argument/Failure
       from the validation layers; one line, exit 2, no backtrace. *)
    | Invalid_argument msg | Failure msg ->
      Printf.eprintf "tilelink: %s\n" msg;
      2)
