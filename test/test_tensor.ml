(* Tests for the dense tensor substrate. *)

open Tilelink_tensor

let check_float = Alcotest.(check (float 1e-9))
let shape = Shape.of_list

let tensor_close ?(atol = 1e-9) ?(rtol = 1e-6) msg expected actual =
  let report = Check.compare ~atol ~rtol expected actual in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" msg
       (Format.asprintf "%a" Check.pp_report report))
    true report.Check.within

(* ------------------------------------------------------------------ *)
(* Shape                                                               *)
(* ------------------------------------------------------------------ *)

let test_shape_basics () =
  let s = shape [ 2; 3; 4 ] in
  Alcotest.(check int) "numel" 24 (Shape.numel s);
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check (list int)) "strides" [ 12; 4; 1 ]
    (Array.to_list (Shape.strides s));
  Alcotest.(check int) "offset" 17
    (Shape.offset_of_index s [| 1; 1; 1 |]);
  Alcotest.(check (list int)) "roundtrip" [ 1; 1; 1 ]
    (Array.to_list (Shape.index_of_offset s 17))

let test_shape_tiles () =
  Alcotest.(check int) "even" 4 (Shape.tiles_along ~extent:16 ~tile:4);
  Alcotest.(check int) "ragged" 5 (Shape.tiles_along ~extent:17 ~tile:4);
  Alcotest.(check (pair int int)) "interior" (4, 8)
    (Shape.tile_range ~extent:17 ~tile:4 ~tid:1);
  Alcotest.(check (pair int int)) "ragged tail" (16, 17)
    (Shape.tile_range ~extent:17 ~tile:4 ~tid:4)

let prop_offset_roundtrip =
  QCheck.Test.make ~name:"offset/index roundtrip" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 4) (int_range 1 6))
    (fun dims ->
      let s = Shape.of_list dims in
      let n = Shape.numel s in
      let ok = ref true in
      for off = 0 to n - 1 do
        if Shape.offset_of_index s (Shape.index_of_offset s off) <> off then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Tensor                                                              *)
(* ------------------------------------------------------------------ *)

let test_tensor_init_get_set () =
  let t = Tensor.init (shape [ 2; 3 ]) (fun i -> float_of_int ((i.(0) * 10) + i.(1))) in
  check_float "init value" 12.0 (Tensor.get2 t 1 2);
  Tensor.set2 t 1 2 99.0;
  check_float "after set" 99.0 (Tensor.get2 t 1 2)

let test_tensor_row_ops () =
  let t = Tensor.init (shape [ 4; 3 ]) (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
  let s = Tensor.row_slice t ~lo:1 ~hi:3 in
  Alcotest.(check int) "slice rows" 2 (Tensor.rows s);
  check_float "slice content" 5.0 (Tensor.get2 s 0 2);
  let dst = Tensor.zeros (shape [ 4; 3 ]) in
  Tensor.set_row_slice dst ~lo:2 s;
  check_float "set_row_slice" 5.0 (Tensor.get2 dst 2 2);
  Tensor.add_row_slice dst ~lo:2 s;
  check_float "add_row_slice doubles" 10.0 (Tensor.get2 dst 2 2)

let test_tensor_col_and_block () =
  let t = Tensor.init (shape [ 3; 4 ]) (fun i -> float_of_int ((i.(0) * 4) + i.(1))) in
  let c = Tensor.col_slice t ~lo:1 ~hi:3 in
  Alcotest.(check int) "col slice width" 2 (Tensor.cols c);
  check_float "col slice content" 6.0 (Tensor.get2 c 1 1);
  let b = Tensor.block t ~row_lo:1 ~row_hi:3 ~col_lo:2 ~col_hi:4 in
  check_float "block content" 11.0 (Tensor.get2 b 1 1);
  let dst = Tensor.zeros (shape [ 3; 4 ]) in
  Tensor.set_block dst ~row_lo:0 ~col_lo:1 b;
  check_float "set_block" 11.0 (Tensor.get2 dst 1 2);
  Tensor.add_block dst ~row_lo:0 ~col_lo:1 b;
  check_float "add_block doubles" 22.0 (Tensor.get2 dst 1 2)

let test_tensor_concat_transpose () =
  let a = Tensor.init (shape [ 1; 2 ]) (fun i -> float_of_int i.(1)) in
  let b = Tensor.init (shape [ 2; 2 ]) (fun i -> 10.0 +. float_of_int ((i.(0) * 2) + i.(1))) in
  let c = Tensor.concat_rows [ a; b ] in
  Alcotest.(check int) "concat rows" 3 (Tensor.rows c);
  check_float "concat content" 13.0 (Tensor.get2 c 2 1);
  let t = Tensor.transpose b in
  check_float "transpose" (Tensor.get2 b 0 1) (Tensor.get2 t 1 0)

let test_tensor_random_deterministic () =
  let a = Tensor.random ~seed:7 (shape [ 5; 5 ]) in
  let b = Tensor.random ~seed:7 (shape [ 5; 5 ]) in
  let c = Tensor.random ~seed:8 (shape [ 5; 5 ]) in
  tensor_close "same seed same tensor" a b;
  Alcotest.(check bool) "different seed differs" true
    (Tensor.max_abs (Tensor.sub a c) > 1e-6)

let test_tensor_random_range () =
  let a = Tensor.random ~seed:3 (shape [ 100 ]) in
  Alcotest.(check bool) "bounded by 0.5" true (Tensor.max_abs a <= 0.5)

let prop_blit_roundtrip =
  QCheck.Test.make ~name:"row_slice/set_row_slice roundtrip" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (m, n) ->
      let t = Tensor.random ~seed:1 (shape [ m; n ]) in
      let out = Tensor.zeros (shape [ m; n ]) in
      for i = 0 to m - 1 do
        Tensor.set_row_slice out ~lo:i (Tensor.row_slice t ~lo:i ~hi:(i + 1))
      done;
      Check.close t out)

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_gemm_known () =
  let a = Tensor.of_array (shape [ 2; 2 ]) [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Tensor.of_array (shape [ 2; 2 ]) [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Linalg.gemm a b in
  tensor_close "2x2 gemm"
    (Tensor.of_array (shape [ 2; 2 ]) [| 19.0; 22.0; 43.0; 50.0 |])
    c

let test_gemm_identity () =
  let a = Tensor.random ~seed:2 (shape [ 4; 4 ]) in
  let eye =
    Tensor.init (shape [ 4; 4 ]) (fun i -> if i.(0) = i.(1) then 1.0 else 0.0)
  in
  tensor_close "a*I = a" a (Linalg.gemm a eye);
  tensor_close "I*a = a" a (Linalg.gemm eye a)

let test_gemm_accumulate () =
  let a = Tensor.random ~seed:3 (shape [ 3; 5 ]) in
  let b = Tensor.random ~seed:4 (shape [ 5; 2 ]) in
  let out = Linalg.gemm a b in
  let twice = Linalg.gemm ~accumulate:true ~out a b in
  tensor_close "accumulate doubles" (Tensor.scale 2.0 (Linalg.gemm a b)) twice

let test_gemm_blocked_equals_full () =
  (* Computing C tile by tile over K chunks must equal the full GEMM —
     the foundation of every overlapped kernel in this repo. *)
  let m, k, n = (8, 12, 6) in
  let a = Tensor.random ~seed:5 (shape [ m; k ]) in
  let b = Tensor.random ~seed:6 (shape [ k; n ]) in
  let full = Linalg.gemm a b in
  let c = Tensor.zeros (shape [ m; n ]) in
  let k_block = 5 in
  let rec sweep lo =
    if lo < k then begin
      let hi = min k (lo + k_block) in
      let a_block = Tensor.col_slice a ~lo ~hi in
      let b_block = Tensor.row_slice b ~lo ~hi in
      Tensor.add_inplace c (Linalg.gemm a_block b_block);
      sweep hi
    end
  in
  sweep 0;
  tensor_close "k-blocked gemm" full c

let test_gemm_microkernel_bits () =
  (* Every block size of the microkernel must equal the bounds-checked
     naive loop *bit for bit* — the autotuner treats the block edge as
     a pure speed knob, which is only sound under exact equality. *)
  let bits_equal msg a b =
    let da = Tensor.data a and db = Tensor.data b in
    Alcotest.(check bool) msg true
      (Array.length da = Array.length db
      && Array.for_all2
           (fun x y ->
             Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
           da db)
  in
  List.iter
    (fun (m, k, n) ->
      let a = Tensor.random ~seed:(m + k) (shape [ m; k ]) in
      let b = Tensor.random ~seed:(k + n) (shape [ k; n ]) in
      let reference = Linalg.gemm_naive a b in
      bits_equal
        (Printf.sprintf "default path bits (%dx%dx%d)" m k n)
        reference (Linalg.gemm a b);
      List.iter
        (fun block ->
          bits_equal
            (Printf.sprintf "block=%d bits (%dx%dx%d)" block m k n)
            reference
            (Linalg.gemm ~block a b))
        [ 1; 2; 3; 4; 7; 8; 16; 64 ];
      (* Accumulating into an existing output must agree too. *)
      let seed_out = Tensor.random ~seed:99 (shape [ m; n ]) in
      let out_naive = Tensor.copy seed_out and out_blocked = Tensor.copy seed_out in
      ignore (Linalg.gemm_naive ~accumulate:true ~out:out_naive a b);
      ignore (Linalg.gemm ~accumulate:true ~out:out_blocked ~block:4 a b);
      bits_equal
        (Printf.sprintf "accumulate bits (%dx%dx%d)" m k n)
        out_naive out_blocked)
    [ (1, 1, 1); (3, 5, 2); (8, 12, 6); (16, 16, 16); (17, 31, 13) ]

let test_batch_gemm () =
  let a = Tensor.random ~seed:7 (shape [ 3; 2; 4 ]) in
  let b = Tensor.random ~seed:8 (shape [ 3; 4; 5 ]) in
  let c = Linalg.batch_gemm a b in
  Alcotest.(check (list int)) "shape" [ 3; 2; 5 ]
    (Shape.to_list (Tensor.shape c));
  (* Check batch 1 against a manual slice. *)
  let slice t batch m n =
    Tensor.init (shape [ m; n ]) (fun i ->
        Tensor.get t [| batch; i.(0); i.(1) |])
  in
  tensor_close "batch 1 matches"
    (Linalg.gemm (slice a 1 2 4) (slice b 1 4 5))
    (slice c 1 2 5)

let test_group_gemm () =
  let groups =
    [
      (Tensor.random ~seed:1 (shape [ 3; 4 ]), Tensor.random ~seed:2 (shape [ 4; 2 ]));
      (Tensor.random ~seed:3 (shape [ 5; 4 ]), Tensor.random ~seed:4 (shape [ 4; 2 ]));
    ]
  in
  let outs = Linalg.group_gemm groups in
  Alcotest.(check int) "two groups" 2 (List.length outs);
  List.iter2
    (fun (a, b) out -> tensor_close "group matches gemm" (Linalg.gemm a b) out)
    groups outs

let prop_gemm_distributes_over_row_split =
  QCheck.Test.make
    ~name:"gemm row-split: [A1;A2] * B = [A1*B; A2*B]" ~count:50
    QCheck.(triple (int_range 2 6) (int_range 1 6) (int_range 1 6))
    (fun (m, k, n) ->
      let a = Tensor.random ~seed:11 (shape [ m; k ]) in
      let b = Tensor.random ~seed:12 (shape [ k; n ]) in
      let split = m / 2 in
      let top = Linalg.gemm (Tensor.row_slice a ~lo:0 ~hi:split) b in
      let bottom = Linalg.gemm (Tensor.row_slice a ~lo:split ~hi:m) b in
      Check.close (Linalg.gemm a b) (Tensor.concat_rows [ top; bottom ]))

let prop_gemm_transpose =
  QCheck.Test.make ~name:"(A B)^T = B^T A^T" ~count:50
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (m, k, n) ->
      let a = Tensor.random ~seed:13 (shape [ m; k ]) in
      let b = Tensor.random ~seed:14 (shape [ k; n ]) in
      Check.close ~atol:1e-8
        (Tensor.transpose (Linalg.gemm a b))
        (Linalg.gemm (Tensor.transpose b) (Tensor.transpose a)))

(* ------------------------------------------------------------------ *)
(* Nn                                                                  *)
(* ------------------------------------------------------------------ *)

let test_softmax_rows () =
  let t = Tensor.of_array (shape [ 1; 3 ]) [| 0.0; 1.0; 2.0 |] in
  let s = Nn.softmax_rows t in
  check_float "sums to 1" 1.0 (Tensor.sum s);
  Alcotest.(check bool) "monotone" true
    (Tensor.get2 s 0 2 > Tensor.get2 s 0 1)

let test_softmax_overflow_safe () =
  let t = Tensor.of_array (shape [ 1; 2 ]) [| 1000.0; 1001.0 |] in
  let s = Nn.softmax_rows t in
  Alcotest.(check bool) "no nan" true (Float.is_finite (Tensor.sum s));
  check_float "sums to 1" 1.0 (Tensor.sum s)

let test_activations () =
  check_float "silu(0)" 0.0 (Nn.silu 0.0);
  Alcotest.(check bool) "silu(5) near 5" true (Float.abs (Nn.silu 5.0 -. 4.966) < 1e-2);
  Alcotest.(check bool) "gelu(-10) near 0" true (Float.abs (Nn.gelu (-10.0)) < 1e-3);
  Alcotest.(check bool) "gelu(10) near 10" true (Float.abs (Nn.gelu 10.0 -. 10.0) < 1e-3)

let test_gated_activation () =
  let gate_up =
    Tensor.of_array (shape [ 1; 4 ]) [| 1.0; 2.0; 3.0; 4.0 |]
  in
  let out = Nn.gated_activation Nn.Silu gate_up in
  check_float "silu(1)*3" (Nn.silu 1.0 *. 3.0) (Tensor.get2 out 0 0);
  check_float "silu(2)*4" (Nn.silu 2.0 *. 4.0) (Tensor.get2 out 0 1)

let test_topk () =
  let t = Tensor.of_array (shape [ 2; 4 ]) [| 0.1; 0.9; 0.5; 0.3; 1.0; 1.0; 0.2; 0.4 |] in
  let ids = Nn.topk t ~k:2 in
  Alcotest.(check (list int)) "row 0" [ 1; 2 ] (Array.to_list ids.(0));
  (* Tie between columns 0 and 1 resolves to the lower index first. *)
  Alcotest.(check (list int)) "row 1 ties" [ 0; 1 ] (Array.to_list ids.(1))

let test_attention_uniform_when_keys_equal () =
  (* All keys identical -> softmax uniform -> output = mean of values. *)
  let q = Tensor.random ~seed:1 (shape [ 2; 4 ]) in
  let k = Tensor.init (shape [ 3; 4 ]) (fun i -> float_of_int i.(1)) in
  let v = Tensor.init (shape [ 3; 4 ]) (fun i -> float_of_int (i.(0) * 10)) in
  let out = Nn.attention q k v in
  check_float "mean of 0,10,20" 10.0 (Tensor.get2 out 0 0)

let test_flash_matches_attention () =
  let q = Tensor.random ~seed:21 (shape [ 6; 8 ]) in
  let k = Tensor.random ~seed:22 (shape [ 20; 8 ]) in
  let v = Tensor.random ~seed:23 (shape [ 20; 8 ]) in
  tensor_close ~atol:1e-8 "flash == reference" (Nn.attention q k v)
    (Nn.flash_attention ~block:7 q k v)

let test_flash_causal_matches () =
  let q = Tensor.random ~seed:31 (shape [ 5; 4 ]) in
  let k = Tensor.random ~seed:32 (shape [ 12; 4 ]) in
  let v = Tensor.random ~seed:33 (shape [ 12; 4 ]) in
  let mask = Nn.Causal { q_offset = 7 } in
  tensor_close ~atol:1e-8 "causal flash == causal reference"
    (Nn.attention ~mask q k v)
    (Nn.flash_attention ~mask ~block:5 q k v)

let test_flash_out_of_order_blocks () =
  (* Flash state must be insensitive to KV block arrival order. *)
  let q = Tensor.random ~seed:41 (shape [ 4; 4 ]) in
  let k = Tensor.random ~seed:42 (shape [ 12; 4 ]) in
  let v = Tensor.random ~seed:43 (shape [ 12; 4 ]) in
  let state = Nn.Flash.create ~m:4 ~d:4 () in
  List.iter
    (fun lo ->
      Nn.Flash.update state q
        (Tensor.row_slice k ~lo ~hi:(lo + 4))
        (Tensor.row_slice v ~lo ~hi:(lo + 4))
        ~kv_offset:lo)
    [ 8; 0; 4 ];
  tensor_close ~atol:1e-8 "out of order flash" (Nn.attention q k v)
    (Nn.Flash.finish state)

let prop_flash_equals_reference =
  QCheck.Test.make ~name:"flash attention equals reference (random shapes)"
    ~count:40
    QCheck.(triple (int_range 1 6) (int_range 1 24) (int_range 1 8))
    (fun (m, s, d) ->
      let q = Tensor.random ~seed:51 (shape [ m; d ]) in
      let k = Tensor.random ~seed:52 (shape [ s; d ]) in
      let v = Tensor.random ~seed:53 (shape [ s; d ]) in
      Check.close ~atol:1e-8
        (Nn.attention q k v)
        (Nn.flash_attention ~block:5 q k v))

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let test_routing_basics () =
  let r = Routing.random ~seed:1 ~num_tokens:16 ~num_experts:4 ~topk:2 in
  Alcotest.(check int) "tokens" 16 (Routing.num_tokens r);
  Array.iter
    (fun token ->
      let ids = Routing.experts_of_token r token in
      Alcotest.(check int) "topk ids" 2 (Array.length ids);
      Alcotest.(check bool) "distinct experts" true (ids.(0) <> ids.(1));
      let w = Routing.weights_of_token r token in
      check_float "weights sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 w))
    (Array.init 16 (fun i -> i))

let test_routing_load_conservation () =
  let r = Routing.random ~seed:2 ~num_tokens:32 ~num_experts:8 ~topk:3 in
  let load = Routing.expert_load r in
  Alcotest.(check int) "total slots" (32 * 3)
    (Array.fold_left ( + ) 0 load)

let test_routing_permutation () =
  let r = Routing.random ~seed:3 ~num_tokens:10 ~num_experts:4 ~topk:2 in
  let p = Routing.permutation r in
  Alcotest.(check int) "entries cover all slots" 20
    (Array.length p.Routing.entries);
  Alcotest.(check int) "segments end at total" 20
    p.Routing.segment_offsets.(4);
  (* Entries between segment offsets must all belong to that expert. *)
  for e = 0 to 3 do
    for i = p.Routing.segment_offsets.(e) to p.Routing.segment_offsets.(e + 1) - 1 do
      let expert, _, _ = p.Routing.entries.(i) in
      Alcotest.(check int) "segment grouping" e expert
    done
  done

let prop_routing_tokens_of_expert_consistent =
  QCheck.Test.make ~name:"tokens_of_expert agrees with experts_of_token"
    ~count:50
    QCheck.(triple (int_range 1 32) (int_range 2 8) (int_range 1 2))
    (fun (tokens, experts, topk) ->
      let topk = min topk experts in
      let r = Routing.random ~seed:9 ~num_tokens:tokens ~num_experts:experts ~topk in
      let ok = ref true in
      for e = 0 to experts - 1 do
        List.iter
          (fun (token, slot) ->
            if (Routing.experts_of_token r token).(slot) <> e then ok := false)
          (Routing.tokens_of_expert r e)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* More edge cases                                                     *)
(* ------------------------------------------------------------------ *)

let test_map2_shape_mismatch () =
  let a = Tensor.zeros (shape [ 2; 2 ]) and b = Tensor.zeros (shape [ 2; 3 ]) in
  Alcotest.(check bool) "rejected" true
    (try ignore (Tensor.add a b); false with Invalid_argument _ -> true)

let test_bad_slices_rejected () =
  let t = Tensor.zeros (shape [ 4; 4 ]) in
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try ignore (f ()); false with Invalid_argument _ -> true))
    [
      (fun () -> Tensor.row_slice t ~lo:(-1) ~hi:2);
      (fun () -> Tensor.row_slice t ~lo:2 ~hi:6);
      (fun () -> Tensor.col_slice t ~lo:3 ~hi:2);
      (fun () -> Tensor.block t ~row_lo:0 ~row_hi:5 ~col_lo:0 ~col_hi:2);
    ]

let test_gated_activation_gelu () =
  let gate_up = Tensor.of_array (shape [ 1; 2 ]) [| 2.0; 3.0 |] in
  let out = Nn.gated_activation Nn.Gelu gate_up in
  check_float "gelu(2)*3" (Nn.gelu 2.0 *. 3.0) (Tensor.get2 out 0 0)

let test_topk_full_width () =
  let t = Tensor.of_array (shape [ 1; 3 ]) [| 0.3; 0.1; 0.2 |] in
  let ids = Nn.topk t ~k:3 in
  Alcotest.(check (list int)) "descending" [ 0; 2; 1 ] (Array.to_list ids.(0))

let test_causal_first_row_sees_only_itself () =
  (* q_offset = 0: row 0 attends to kv position 0 only, so its output
     equals v[0]. *)
  let q = Tensor.random ~seed:91 (shape [ 1; 4 ]) in
  let k = Tensor.random ~seed:92 (shape [ 5; 4 ]) in
  let v = Tensor.random ~seed:93 (shape [ 5; 4 ]) in
  let out = Nn.attention ~mask:(Nn.Causal { q_offset = 0 }) q k v in
  tensor_close "first causal row = v0" (Tensor.row_slice v ~lo:0 ~hi:1) out

let test_flash_empty_finish_zero () =
  let state = Nn.Flash.create ~m:2 ~d:3 () in
  let out = Nn.Flash.finish state in
  check_float "all zeros" 0.0 (Tensor.max_abs out)

let test_routing_of_logits_deterministic () =
  let logits = Tensor.random ~seed:94 (shape [ 6; 4 ]) in
  let r1 = Routing.of_logits logits ~topk:2 in
  let r2 = Routing.of_logits logits ~topk:2 in
  for token = 0 to 5 do
    Alcotest.(check (list int)) "same experts"
      (Array.to_list (Routing.experts_of_token r1 token))
      (Array.to_list (Routing.experts_of_token r2 token))
  done

let test_batch_gemm_rejects_mismatch () =
  let a = Tensor.zeros (shape [ 2; 3; 4 ]) in
  let b = Tensor.zeros (shape [ 3; 4; 5 ]) in
  Alcotest.(check bool) "batch mismatch" true
    (try ignore (Linalg.batch_gemm a b); false
     with Invalid_argument _ -> true)

let test_transpose_involution () =
  let t = Tensor.random ~seed:95 (shape [ 3; 5 ]) in
  tensor_close "double transpose" t (Tensor.transpose (Tensor.transpose t))

let prop_sum_linear =
  QCheck.Test.make ~name:"sum is linear under scale" ~count:100
    QCheck.(pair (int_range 1 6) (float_range (-4.0) 4.0))
    (fun (n, k) ->
      let t = Tensor.random ~seed:96 (shape [ n; n ]) in
      Float.abs (Tensor.sum (Tensor.scale k t) -. (k *. Tensor.sum t)) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Check                                                               *)
(* ------------------------------------------------------------------ *)

let test_check_reports_mismatch () =
  let a = Tensor.zeros (shape [ 2; 2 ]) in
  let b = Tensor.of_array (shape [ 2; 2 ]) [| 0.0; 0.0; 0.5; 0.0 |] in
  let r = Check.compare a b in
  Alcotest.(check bool) "mismatch flagged" false r.Check.within;
  check_float "max err" 0.5 r.Check.max_abs_err;
  Alcotest.(check (list int)) "worst index" [ 1; 0 ]
    (Array.to_list r.Check.worst_index)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "tiles" `Quick test_shape_tiles;
          qc prop_offset_roundtrip;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "init/get/set" `Quick test_tensor_init_get_set;
          Alcotest.test_case "row ops" `Quick test_tensor_row_ops;
          Alcotest.test_case "col and block" `Quick test_tensor_col_and_block;
          Alcotest.test_case "concat/transpose" `Quick
            test_tensor_concat_transpose;
          Alcotest.test_case "random deterministic" `Quick
            test_tensor_random_deterministic;
          Alcotest.test_case "random range" `Quick test_tensor_random_range;
          qc prop_blit_roundtrip;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "gemm known" `Quick test_gemm_known;
          Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
          Alcotest.test_case "gemm accumulate" `Quick test_gemm_accumulate;
          Alcotest.test_case "k-blocked == full" `Quick
            test_gemm_blocked_equals_full;
          Alcotest.test_case "microkernel bit-identity" `Quick
            test_gemm_microkernel_bits;
          Alcotest.test_case "batch gemm" `Quick test_batch_gemm;
          Alcotest.test_case "group gemm" `Quick test_group_gemm;
          qc prop_gemm_distributes_over_row_split;
          qc prop_gemm_transpose;
        ] );
      ( "nn",
        [
          Alcotest.test_case "softmax" `Quick test_softmax_rows;
          Alcotest.test_case "softmax overflow" `Quick
            test_softmax_overflow_safe;
          Alcotest.test_case "activations" `Quick test_activations;
          Alcotest.test_case "gated activation" `Quick test_gated_activation;
          Alcotest.test_case "topk" `Quick test_topk;
          Alcotest.test_case "attention uniform" `Quick
            test_attention_uniform_when_keys_equal;
          Alcotest.test_case "flash matches" `Quick
            test_flash_matches_attention;
          Alcotest.test_case "flash causal" `Quick test_flash_causal_matches;
          Alcotest.test_case "flash out of order" `Quick
            test_flash_out_of_order_blocks;
          qc prop_flash_equals_reference;
        ] );
      ( "routing",
        [
          Alcotest.test_case "basics" `Quick test_routing_basics;
          Alcotest.test_case "load conservation" `Quick
            test_routing_load_conservation;
          Alcotest.test_case "permutation" `Quick test_routing_permutation;
          qc prop_routing_tokens_of_expert_consistent;
        ] );
      ( "edges",
        [
          Alcotest.test_case "map2 mismatch" `Quick test_map2_shape_mismatch;
          Alcotest.test_case "bad slices" `Quick test_bad_slices_rejected;
          Alcotest.test_case "gelu gate" `Quick test_gated_activation_gelu;
          Alcotest.test_case "topk full width" `Quick test_topk_full_width;
          Alcotest.test_case "causal first row" `Quick
            test_causal_first_row_sees_only_itself;
          Alcotest.test_case "flash empty finish" `Quick
            test_flash_empty_finish_zero;
          Alcotest.test_case "routing deterministic" `Quick
            test_routing_of_logits_deterministic;
          Alcotest.test_case "batch mismatch" `Quick
            test_batch_gemm_rejects_mismatch;
          Alcotest.test_case "transpose involution" `Quick
            test_transpose_involution;
          qc prop_sum_linear;
        ] );
      ( "check",
        [ Alcotest.test_case "mismatch report" `Quick test_check_reports_mismatch ] );
    ]
