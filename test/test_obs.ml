(* Tests for the telemetry subsystem: JSON printer/parser, metrics
   registry, event journal, Perfetto export, and the instrumented
   runtime end to end. *)

open Tilelink_obs
open Tilelink_core
open Tilelink_machine
open Tilelink_workloads

let check_float = Alcotest.(check (float 1e-9))

let string_contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("off", Json.Bool false);
      ("int", Json.Num 42.0);
      ("frac", Json.Num 2.5);
      ("neg", Json.Num (-0.25));
      ("text", Json.Str "a\"b\\c\nd\te");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.List [ Json.Num 1.0; Json.Obj [ ("k", Json.Str "v") ] ]);
    ]

let test_json_roundtrip () =
  let compact = Json.to_string sample_doc in
  let pretty = Json.to_string ~indent:true sample_doc in
  Alcotest.(check bool)
    "compact reparses to the same AST" true
    (Json.parse_exn compact = sample_doc);
  Alcotest.(check bool)
    "pretty reparses to the same AST" true
    (Json.parse_exn pretty = sample_doc)

let test_json_parse_escapes () =
  Alcotest.(check bool)
    "standard and unicode escapes" true
    (Json.parse_exn "\"a\\\"b\\n\\t\\u0041\\u00e9\""
    = Json.Str "a\"b\n\tA\xc3\xa9")

let test_json_parse_errors () =
  let bad input =
    match Json.parse input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unterminated object" true (bad "{");
  Alcotest.(check bool) "trailing garbage" true (bad "1 2");
  Alcotest.(check bool) "bare word" true (bad "nope");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "missing colon" true (bad "{\"a\" 1}")

let test_json_accessors () =
  let doc = Json.parse_exn {|{"a": 1.5, "b": [1, 2], "c": "s"}|} in
  Alcotest.(check (option (float 1e-9)))
    "member + to_float" (Some 1.5)
    (Option.bind (Json.member "a" doc) Json.to_float);
  Alcotest.(check int) "to_list length" 2
    (List.length (Json.to_list (Option.get (Json.member "b" doc))));
  Alcotest.(check (option string))
    "to_str" (Some "s")
    (Option.bind (Json.member "c" doc) Json.to_str);
  Alcotest.(check bool) "missing member" true (Json.member "zz" doc = None);
  Alcotest.(check bool) "member on non-obj" true
    (Json.member "a" (Json.Num 1.0) = None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_monotonic () =
  let m = Metrics.create () in
  Metrics.inc m "ops";
  Metrics.inc m ~by:5 "ops";
  Alcotest.(check (option int)) "accumulates" (Some 6)
    (Metrics.counter_value m "ops");
  Alcotest.(check bool) "negative increment rejected" true
    (try
       Metrics.inc m ~by:(-1) "ops";
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (option int)) "unchanged after rejection" (Some 6)
    (Metrics.counter_value m "ops")

let test_gauges () =
  let m = Metrics.create () in
  Metrics.set_gauge m "temp" 2.5;
  Metrics.add_gauge m "temp" 0.5;
  Alcotest.(check (option (float 1e-9)))
    "set then add" (Some 3.0) (Metrics.gauge_value m "temp");
  Metrics.set_gauge m "temp" (-1.0);
  Alcotest.(check (option (float 1e-9)))
    "gauges may go down" (Some (-1.0)) (Metrics.gauge_value m "temp")

(* Bucket 0 covers (-inf, 1]; bucket i covers (2^(i-1), 2^i]; bucket 27
   is the +Inf overflow. *)
let test_bucket_boundaries () =
  let cases =
    [
      (0.0, 0); (0.5, 0); (1.0, 0); (1.0001, 1); (2.0, 1); (2.5, 2);
      (4.0, 2); (4.1, 3); (67108864.0, 26) (* 2^26 *); (67108865.0, 27);
      (1e12, 27);
    ]
  in
  List.iter
    (fun (v, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %g" v)
        expected (Metrics.bucket_index v))
    cases

let test_histogram_summary () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  let s = Option.get (Metrics.summary m "lat") in
  Alcotest.(check int) "count" 100 s.Metrics.count;
  check_float "sum" 5050.0 s.Metrics.sum;
  check_float "mean" 50.5 s.Metrics.mean;
  check_float "min" 1.0 s.Metrics.min;
  check_float "max" 100.0 s.Metrics.max;
  check_float "p50 nearest-rank" 50.0 s.Metrics.p50;
  check_float "p95 nearest-rank" 95.0 s.Metrics.p95;
  check_float "p99 nearest-rank" 99.0 s.Metrics.p99;
  Alcotest.(check bool) "absent histogram" true
    (Metrics.summary m "nope" = None)

let test_merged_summary () =
  let m = Metrics.create () in
  Metrics.observe m "wait_us.pc" 1.0;
  Metrics.observe m "wait_us.pc" 3.0;
  Metrics.observe m "wait_us.peer" 5.0;
  Metrics.observe m "other" 100.0;
  let s = Option.get (Metrics.merged_summary m ~prefix:"wait_us.") in
  Alcotest.(check int) "pools only the prefix" 3 s.Metrics.count;
  check_float "pooled max" 5.0 s.Metrics.max;
  check_float "pooled sum" 9.0 s.Metrics.sum;
  Alcotest.(check bool) "no match" true
    (Metrics.merged_summary m ~prefix:"zz." = None)

let test_disabled_registry_records_nothing () =
  let m = Metrics.create ~enabled:false () in
  Metrics.inc m "ops";
  Metrics.set_gauge m "g" 1.0;
  Metrics.observe m "h" 1.0;
  Alcotest.(check bool) "no counter" true (Metrics.counter_value m "ops" = None);
  Alcotest.(check bool) "no gauge" true (Metrics.gauge_value m "g" = None);
  Alcotest.(check bool) "no histogram" true (Metrics.summary m "h" = None);
  Alcotest.(check (list string)) "no names" [] (Metrics.counter_names m)

let test_prometheus_snapshot () =
  let m = Metrics.create () in
  Metrics.inc m "ops.total";
  Metrics.set_gauge m "temp" 2.5;
  let text = Metrics.to_prometheus m in
  Alcotest.(check string)
    "counter + gauge exposition"
    "# TYPE tilelink_ops_total counter\n\
     tilelink_ops_total 1\n\
     # TYPE tilelink_temp gauge\n\
     tilelink_temp 2.5\n"
    text

let test_prometheus_histogram_lines () =
  let m = Metrics.create () in
  Metrics.observe m "wait_us.pc" 0.5;
  Metrics.observe m "wait_us.pc" 3.0;
  let text = Metrics.to_prometheus m in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" line) true
        (string_contains text line))
    [
      "# TYPE tilelink_wait_us_pc histogram";
      "tilelink_wait_us_pc_bucket{le=\"1\"} 1";
      "tilelink_wait_us_pc_bucket{le=\"2\"} 1";
      "tilelink_wait_us_pc_bucket{le=\"4\"} 2";
      "tilelink_wait_us_pc_bucket{le=\"+Inf\"} 2";
      "tilelink_wait_us_pc_sum 3.5";
      "tilelink_wait_us_pc_count 2";
    ]

let test_metrics_json_snapshot () =
  let m = Metrics.create () in
  Metrics.inc m "ops";
  Metrics.set_gauge m "temp" 2.5;
  Alcotest.(check string)
    "compact export"
    {|{"counters":{"ops":1},"gauges":{"temp":2.5},"histograms":{}}|}
    (Json.to_string (Metrics.to_json m));
  Metrics.observe m "lat" 3.0;
  let doc = Json.parse_exn (Json.to_string (Metrics.to_json m)) in
  let lat =
    Option.get
      (Json.member "lat" (Option.get (Json.member "histograms" doc)))
  in
  Alcotest.(check (option (float 1e-9)))
    "histogram p99 in export" (Some 3.0)
    (Option.bind (Json.member "p99" lat) Json.to_float)

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let signal i =
  Journal.Signal_set { key = "k"; rank = 0; amount = 1; value = i }

let test_journal_order_and_wrap () =
  let j = Journal.create ~capacity:4 () in
  for i = 1 to 6 do
    Journal.record j ~t:(float_of_int i) (signal i)
  done;
  Alcotest.(check int) "length capped" 4 (Journal.length j);
  Alcotest.(check int) "dropped oldest" 2 (Journal.dropped j);
  let values =
    List.map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Signal_set { value; _ } -> value
        | _ -> -1)
      (Journal.entries j)
  in
  Alcotest.(check (list int)) "oldest-first, newest kept" [ 3; 4; 5; 6 ]
    values

(* Regression: with exactly [capacity] entries recorded, the write
   cursor sits at [next = capacity] without having wrapped — [entries]
   used to hit the one empty-looking slot arrangement and die on
   [assert false]. *)
let test_journal_exact_capacity_boundary () =
  let j = Journal.create ~capacity:4 () in
  for i = 1 to 4 do
    Journal.record j ~t:(float_of_int i) (signal i)
  done;
  Alcotest.(check int) "full, nothing dropped" 4 (Journal.length j);
  Alcotest.(check int) "no drops at the boundary" 0 (Journal.dropped j);
  let values =
    List.map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Signal_set { value; _ } -> value
        | _ -> -1)
      (Journal.entries j)
  in
  Alcotest.(check (list int)) "oldest first at the boundary" [ 1; 2; 3; 4 ]
    values

let test_journal_one_past_capacity () =
  let j = Journal.create ~capacity:4 () in
  for i = 1 to 5 do
    Journal.record j ~t:(float_of_int i) (signal i)
  done;
  Alcotest.(check int) "still full" 4 (Journal.length j);
  Alcotest.(check int) "oldest dropped" 1 (Journal.dropped j);
  let values =
    List.map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Signal_set { value; _ } -> value
        | _ -> -1)
      (Journal.entries j)
  in
  Alcotest.(check (list int)) "window slid by one" [ 2; 3; 4; 5 ] values

let test_journal_disabled () =
  let j = Journal.create ~enabled:false () in
  Journal.record j ~t:1.0 (signal 1);
  Alcotest.(check int) "records nothing" 0 (Journal.length j);
  Alcotest.(check int) "drops nothing" 0 (Journal.dropped j)

let test_journal_event_names () =
  let names =
    List.map Journal.event_name
      [
        signal 1;
        Journal.Wait_begin { key = "k"; rank = 0; threshold = 1 };
        Journal.Wait_end { key = "k"; rank = 0; threshold = 1; started = 0.0 };
        Journal.Tile_push { label = "t"; src = 0; dst = 1; bytes = 8.0 };
        Journal.Tile_pull { label = "t"; src = 1; dst = 0; bytes = 8.0 };
        Journal.Channel_acquire { rank = 0; base = 0; extent = 4 };
        Journal.Channel_release { rank = 0; base = 0; extent = 4 };
        Journal.Deadlock { message = "stuck"; blocked = 3 };
      ]
  in
  Alcotest.(check (list string))
    "stable names"
    [
      "signal_set"; "wait_begin"; "wait_end"; "tile_push"; "tile_pull";
      "channel_acquire"; "channel_release"; "deadlock";
    ]
    names

let test_journal_json_parses () =
  let j = Journal.create () in
  Journal.record j ~t:1.0 (signal 1);
  Journal.record j ~t:2.0
    (Journal.Deadlock { message = "q\"uote"; blocked = 1 });
  match Json.parse (Json.to_string (Journal.to_json j)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "journal export not parseable: %s" msg

(* ------------------------------------------------------------------ *)
(* Telemetry handle                                                     *)
(* ------------------------------------------------------------------ *)

let test_telemetry_active () =
  Alcotest.(check bool) "absent" false (Telemetry.active None);
  let off = Telemetry.create ~enabled:false () in
  Alcotest.(check bool) "disabled" false (Telemetry.active (Some off));
  Alcotest.(check bool) "disabled metrics too" false
    (Metrics.enabled (Telemetry.metrics off));
  let on = Telemetry.create () in
  Alcotest.(check bool) "enabled" true (Telemetry.active (Some on));
  Telemetry.set_enabled on false;
  Alcotest.(check bool) "switchable" false (Telemetry.active (Some on))

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                      *)
(* ------------------------------------------------------------------ *)

let synthetic_trace () =
  let tr = Tilelink_sim.Trace.create () in
  Tilelink_sim.Trace.add tr ~rank:0 ~lane:Tilelink_sim.Trace.Comm_sm
    ~label:"push" ~t0:0.0 ~t1:1.0;
  Tilelink_sim.Trace.add tr ~rank:1 ~lane:Tilelink_sim.Trace.Wait
    ~label:"wait" ~t0:0.5 ~t1:1.0;
  tr

let synthetic_journal () =
  let j = Journal.create () in
  Journal.record j ~t:0.5
    (Journal.Wait_begin { key = "sig"; rank = 1; threshold = 1 });
  Journal.record j ~t:1.0
    (Journal.Signal_set { key = "sig"; rank = 0; amount = 1; value = 1 });
  Journal.record j ~t:1.0
    (Journal.Wait_end { key = "sig"; rank = 1; threshold = 1; started = 0.5 });
  j

let export_events () =
  let doc =
    Perfetto.export ~trace:(synthetic_trace ()) ~journal:(synthetic_journal ())
      ()
  in
  Json.to_list doc

let phase name event =
  match Option.bind (Json.member "ph" event) Json.to_str with
  | Some p -> p = name
  | None -> false

let test_perfetto_flow_pair () =
  let events = export_events () in
  let starts = List.filter (phase "s") events in
  let finishes = List.filter (phase "f") events in
  Alcotest.(check int) "one flow start" 1 (List.length starts);
  Alcotest.(check int) "one flow finish" 1 (List.length finishes);
  let id e = Option.bind (Json.member "id" e) Json.to_float in
  Alcotest.(check bool) "shared flow id" true
    (id (List.hd starts) = id (List.hd finishes));
  Alcotest.(check bool) "finish binds enclosing slice" true
    (Json.member "bp" (List.hd finishes) = Some (Json.Str "e"))

let test_perfetto_counter_track () =
  let events = export_events () in
  let counters = List.filter (phase "C") events in
  Alcotest.(check bool) "has counter samples" true (counters <> []);
  Alcotest.(check bool) "outstanding-signals track present" true
    (List.exists
       (fun e ->
         Option.bind (Json.member "name" e) Json.to_str
         = Some "outstanding signals")
       counters)

let test_perfetto_deadlock_instant () =
  let j = synthetic_journal () in
  Journal.record j ~t:2.0 (Journal.Deadlock { message = "stuck"; blocked = 2 });
  let events =
    Json.to_list (Perfetto.export ~trace:(synthetic_trace ()) ~journal:j ())
  in
  Alcotest.(check bool) "instant emitted" true
    (List.exists (phase "i") events)

let test_perfetto_string_parses () =
  let s =
    Perfetto.export_string ~trace:(synthetic_trace ())
      ~journal:(synthetic_journal ()) ()
  in
  match Json.parse s with
  | Ok (Json.List (_ :: _)) -> ()
  | Ok _ -> Alcotest.fail "expected a non-empty event array"
  | Error msg -> Alcotest.failf "perfetto export not parseable: %s" msg

(* The plain simulator trace export must also stay parseable by our
   own reader — profile --check depends on it. *)
let test_chrome_json_parses () =
  let s = Tilelink_sim.Trace.to_chrome_json (synthetic_trace ()) in
  match Json.parse s with
  | Ok (Json.List events) ->
    Alcotest.(check bool) "has duration events" true
      (List.exists (phase "X") events)
  | Ok _ -> Alcotest.fail "expected an event array"
  | Error msg -> Alcotest.failf "chrome json not parseable: %s" msg

(* ------------------------------------------------------------------ *)
(* Instrumented runtime, end to end                                     *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    Design_space.comm_tile = (2, 2);
    compute_tile = (2, 3);
    comm_order = Tile.Row_major;
    compute_order = Tile.Row_major;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

let small_spec = { Mlp.m = 8; k = 4; n = 6; world_size = 2 }

let test_profiled_run_populates_telemetry () =
  let telemetry = Telemetry.create () in
  let cluster, result =
    Mlp.profile_ag_gemm ~config:small_config ~telemetry small_spec
      ~spec_gpu:Calib.test_machine
  in
  Alcotest.(check bool) "positive makespan" true
    (result.Runtime.makespan > 0.0);
  Alcotest.(check bool) "trace recorded" true
    (Tilelink_sim.Trace.spans (Cluster.trace cluster) <> []);
  let m = Telemetry.metrics telemetry in
  Alcotest.(check bool) "wait histograms populated" true
    (Metrics.merged_summary m ~prefix:"wait_us." <> None);
  Alcotest.(check bool) "compute tiles counted" true
    (match Metrics.counter_value m "tiles.compute" with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check (option (float 1e-9)))
    "makespan gauge mirrors the result"
    (Some result.Runtime.makespan)
    (Metrics.gauge_value m "engine.makespan_us");
  Alcotest.(check bool) "journal saw signal traffic" true
    (Journal.length (Telemetry.journal telemetry) > 0);
  Alcotest.(check bool) "lane utilization gauges" true
    (Metrics.gauge_value m "util.sm.rank0" <> None);
  Alcotest.(check bool) "causal spans recorded" true
    (Span.length (Telemetry.spans telemetry) > 0);
  Alcotest.(check bool) "compute and copy spans present" true
    (let spans = Span.spans (Telemetry.spans telemetry) in
     List.exists (fun s -> s.Span.kind = Span.Compute) spans
     && List.exists (fun s -> s.Span.kind = Span.Copy) spans)

let test_disabled_telemetry_is_invisible () =
  let run telemetry =
    let cluster = Cluster.create Calib.test_machine ~world_size:2 in
    let program =
      Mlp.ag_gemm_program ~config:small_config small_spec
        ~spec_gpu:Calib.test_machine
    in
    (Runtime.run ?telemetry cluster program).Runtime.makespan
  in
  let plain = run None in
  let off = Telemetry.create ~enabled:false () in
  let with_off = run (Some off) in
  check_float "identical makespan with telemetry off" plain with_off;
  Alcotest.(check (list string))
    "no metrics recorded" []
    (Metrics.histogram_names (Telemetry.metrics off));
  Alcotest.(check int) "no journal entries" 0
    (Journal.length (Telemetry.journal off));
  Alcotest.(check int) "no spans" 0 (Span.length (Telemetry.spans off))

(* Recording from several domains at once must lose nothing: the
   registries are shared by the parallel backend's worker domains. *)
let test_concurrent_recording () =
  let metrics = Metrics.create () in
  let journal = Journal.create ~capacity:100_000 () in
  let spans = Span.create () in
  let per_domain = 2_000 and n_domains = 4 in
  let worker_body d () =
    for i = 1 to per_domain do
      Metrics.inc metrics "shared.counter";
      Metrics.add_gauge metrics "shared.gauge" 1.0;
      Metrics.observe metrics "shared.hist" (float_of_int ((i mod 7) + 1));
      Journal.record journal ~t:(float_of_int i)
        (Journal.Signal_set
           { key = "pc[0][0]"; rank = d; amount = 1; value = i });
      Span.record_task spans ~kind:Span.Compute
        ~label:(Printf.sprintf "d%d/%d" d i)
        ~rank:d ~worker:d ~t0:0.0 ~t1:1.0
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker_body d)) in
  List.iter Domain.join domains;
  let total = n_domains * per_domain in
  Alcotest.(check (option int))
    "counter total" (Some total)
    (Metrics.counter_value metrics "shared.counter");
  Alcotest.(check (option (float 0.0)))
    "gauge total"
    (Some (float_of_int total))
    (Metrics.gauge_value metrics "shared.gauge");
  (match Metrics.summary metrics "shared.hist" with
  | None -> Alcotest.fail "histogram missing"
  | Some s -> Alcotest.(check int) "histogram count" total s.Metrics.count);
  Alcotest.(check int) "journal entries" total (Journal.length journal);
  Alcotest.(check int) "journal dropped" 0 (Journal.dropped journal);
  Alcotest.(check int) "span count" total (Span.length spans);
  (* Ids must be dense and unique: the id is the store index. *)
  let ids = List.map (fun s -> s.Span.id) (Span.spans spans) in
  Alcotest.(check (list int)) "span ids dense" (List.init total Fun.id) ids

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter monotonic" `Quick
            test_counter_monotonic;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "bucket boundaries" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "histogram summary" `Quick
            test_histogram_summary;
          Alcotest.test_case "merged summary" `Quick test_merged_summary;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_registry_records_nothing;
          Alcotest.test_case "prometheus snapshot" `Quick
            test_prometheus_snapshot;
          Alcotest.test_case "prometheus histogram" `Quick
            test_prometheus_histogram_lines;
          Alcotest.test_case "json snapshot" `Quick
            test_metrics_json_snapshot;
        ] );
      ( "journal",
        [
          Alcotest.test_case "order and wrap" `Quick
            test_journal_order_and_wrap;
          Alcotest.test_case "exact capacity boundary" `Quick
            test_journal_exact_capacity_boundary;
          Alcotest.test_case "one past capacity" `Quick
            test_journal_one_past_capacity;
          Alcotest.test_case "disabled" `Quick test_journal_disabled;
          Alcotest.test_case "event names" `Quick test_journal_event_names;
          Alcotest.test_case "json parses" `Quick test_journal_json_parses;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "active guard" `Quick test_telemetry_active ] );
      ( "domain-safety",
        [
          Alcotest.test_case "concurrent recording" `Quick
            test_concurrent_recording;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "flow pair" `Quick test_perfetto_flow_pair;
          Alcotest.test_case "counter track" `Quick
            test_perfetto_counter_track;
          Alcotest.test_case "deadlock instant" `Quick
            test_perfetto_deadlock_instant;
          Alcotest.test_case "export parses" `Quick
            test_perfetto_string_parses;
          Alcotest.test_case "chrome json parses" `Quick
            test_chrome_json_parses;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "profiled run populates" `Quick
            test_profiled_run_populates_telemetry;
          Alcotest.test_case "disabled is invisible" `Quick
            test_disabled_telemetry_is_invisible;
        ] );
    ]
