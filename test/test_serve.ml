(* The serving layer: seeded trace generation, admission/backpressure,
   degradation tiers, and the conservation law the whole stack must
   uphold — every offered request is exactly one of completed, shed,
   or failed at drain (nothing in flight, nothing lost, nothing
   double-counted), with shed requests never contaminating the latency
   percentiles.  All properties hold clean and under a seeded
   mid-trace rank crash, and every report is byte-deterministic. *)

open Tilelink_machine
module Serve = Tilelink_serve
module Trace_gen = Serve.Trace_gen
module Admission = Serve.Admission
module Degrade = Serve.Degrade
module Slo = Serve.Slo
module Server = Serve.Server

let machine = Calib.test_machine

(* ------------------------------------------------------------------ *)
(* Trace generation                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_determinism () =
  let gen seed =
    Trace_gen.generate ~seed ~requests:40
      (Trace_gen.Poisson { rate_rps = 1000. })
  in
  Alcotest.(check bool) "same seed, same trace" true (gen 7 = gen 7);
  Alcotest.(check bool) "different seed, different trace" true (gen 7 <> gen 8)

let trace_well_formed reqs ~requests =
  List.length reqs = requests
  && List.for_all
       (fun (r : Trace_gen.request) ->
         r.rq_prompt >= 1 && r.rq_decode >= 1 && r.rq_arrival_us >= 0.)
       reqs
  && List.mapi (fun i (r : Trace_gen.request) -> r.rq_id = i) reqs
     |> List.for_all Fun.id
  &&
  let rec sorted = function
    | (a : Trace_gen.request) :: (b : Trace_gen.request) :: rest ->
      a.rq_arrival_us <= b.rq_arrival_us && sorted (b :: rest)
    | _ -> true
  in
  sorted reqs

let qcheck_trace_shape =
  QCheck.Test.make ~count:30 ~name:"generated traces are well-formed"
    QCheck.(triple (int_range 1 10_000) (int_range 1 60) bool)
    (fun (seed, requests, bursty) ->
      let arrival =
        if bursty then
          Trace_gen.Bursty { rate_rps = 5_000.; burst = 6.; on_fraction = 0.3 }
        else Trace_gen.Poisson { rate_rps = 5_000. }
      in
      let requests = max 1 requests in
      trace_well_formed ~requests
        (Trace_gen.generate ~prompt_mean:32 ~decode_mean:4 ~seed ~requests
           arrival))

let test_trace_parse () =
  let text = "# comment\n10.5,64,4\n\n0.0,32,2\n" in
  (match Trace_gen.parse_trace text with
  | Ok [ a; b ] ->
    (* Re-sorted by arrival and re-numbered. *)
    Alcotest.(check int) "first id" 0 a.Trace_gen.rq_id;
    Alcotest.(check (float 0.)) "first arrival" 0.0 a.Trace_gen.rq_arrival_us;
    Alcotest.(check int) "second prompt" 64 b.Trace_gen.rq_prompt
  | Ok _ -> Alcotest.fail "expected two requests"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Trace_gen.parse_trace "1.0,0,4\n" with
  | Error msg ->
    Alcotest.(check bool) "error names the line" true
      (String.length msg > 0 && String.sub msg 0 10 = "trace line")
  | Ok _ -> Alcotest.fail "zero prompt accepted");
  match Trace_gen.parse_trace "# only comments\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace accepted"

(* Replay files written on other platforms: CRLF line endings, a UTF-8
   BOM, bare-CR endings, trailing blank lines — all must parse to the
   same requests as the plain-LF file, and error messages must keep
   pointing at the line number the user's editor shows. *)
let test_trace_parse_line_endings () =
  let reference =
    match Trace_gen.parse_trace "# comment\n10.5,64,4\n0.0,32,2\n" with
    | Ok reqs -> reqs
    | Error e -> Alcotest.failf "LF reference failed: %s" e
  in
  let same name text =
    match Trace_gen.parse_trace text with
    | Ok reqs ->
      Alcotest.(check bool) (name ^ " parses identically") true
        (reqs = reference)
    | Error e -> Alcotest.failf "%s failed: %s" name e
  in
  same "CRLF" "# comment\r\n10.5,64,4\r\n0.0,32,2\r\n";
  same "CRLF + trailing blanks" "# comment\r\n10.5,64,4\r\n0.0,32,2\r\n\r\n\r\n";
  same "bare CR" "# comment\r10.5,64,4\r0.0,32,2\r";
  same "UTF-8 BOM + CRLF" "\xef\xbb\xbf# comment\r\n10.5,64,4\r\n0.0,32,2\r\n";
  (* A BOM on the first data line must not corrupt the first field. *)
  same "UTF-8 BOM, no comment"
    "\xef\xbb\xbf10.5,64,4\r\n0.0,32,2\r\n";
  (* Error line numbers count CRLF lines exactly like LF lines. *)
  match Trace_gen.parse_trace "# c\r\n1.0,8,2\r\nbogus\r\n" with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error names CRLF line 3 (%s)" msg)
      true
      (String.length msg >= 12 && String.sub msg 0 12 = "trace line 3")
  | Ok _ -> Alcotest.fail "bogus CRLF line accepted"

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let req id arrival =
  { Trace_gen.rq_id = id; rq_arrival_us = arrival; rq_prompt = 8; rq_decode = 2 }

let test_admission_backpressure () =
  let q = Admission.create ~capacity:2 in
  Alcotest.(check bool) "first admitted" true (Admission.offer q (req 0 0.) = Ok ());
  Alcotest.(check bool) "second admitted" true (Admission.offer q (req 1 0.) = Ok ());
  Alcotest.(check bool) "third shed" true
    (Admission.offer q (req 2 0.) = Error Admission.Queue_full);
  Alcotest.(check (float 0.)) "pressure full" 1.0 (Admission.pressure q)

let test_admission_deadline () =
  let q = Admission.create ~capacity:4 in
  ignore (Admission.offer q (req 0 0.));
  ignore (Admission.offer q (req 1 900.));
  (* Request 0 is stale: now + est exceeds arrival + deadline. *)
  (match
     Admission.poll q ~now_us:1000. ~ttft_deadline_us:500.
       ~est_first_token_us:100.
   with
  | Some (Error (r, Admission.Deadline)) ->
    Alcotest.(check int) "stale head shed" 0 r.Trace_gen.rq_id
  | _ -> Alcotest.fail "expected deadline shed");
  match
    Admission.poll q ~now_us:1000. ~ttft_deadline_us:500.
      ~est_first_token_us:100.
  with
  | Some (Ok r) -> Alcotest.(check int) "fresh head admitted" 1 r.Trace_gen.rq_id
  | _ -> Alcotest.fail "expected admission"

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let test_degrade_ladder () =
  let d = Degrade.create ~quiet_steps:2 () in
  Alcotest.(check int) "starts full" 0 (Degrade.tier_rank (Degrade.tier d));
  Alcotest.(check int) "full batch" 8 (Degrade.max_batch d ~full:8);
  (* Severe pressure jumps straight to the top tier. *)
  (match Degrade.observe d ~now_us:100. ~pressure:0.95 ~faulted:false with
  | Some Degrade.Nonoverlap -> ()
  | _ -> Alcotest.fail "expected escalation to nonoverlap");
  Alcotest.(check int) "halved batch" 4 (Degrade.max_batch d ~full:8);
  (* Two quiet steps walk one tier back down. *)
  Alcotest.(check bool) "first quiet step holds" true
    (Degrade.observe d ~now_us:200. ~pressure:0.1 ~faulted:false = None);
  (match Degrade.observe d ~now_us:300. ~pressure:0.1 ~faulted:false with
  | Some Degrade.Shrunk -> ()
  | _ -> Alcotest.fail "expected recovery to shrunk");
  (* Consecutive faulted steps escalate even without queue pressure. *)
  ignore (Degrade.observe d ~now_us:400. ~pressure:0.0 ~faulted:true);
  (match Degrade.observe d ~now_us:500. ~pressure:0.0 ~faulted:true with
  | Some Degrade.Nonoverlap -> ()
  | _ -> Alcotest.fail "expected fault escalation");
  Degrade.finish d ~now_us:600.;
  let total =
    Degrade.time_in d Degrade.Overlapped
    +. Degrade.time_in d Degrade.Shrunk
    +. Degrade.time_in d Degrade.Nonoverlap
  in
  Alcotest.(check (float 1e-9)) "tier times cover the whole span" 600. total

(* ------------------------------------------------------------------ *)
(* End-to-end conservation                                             *)
(* ------------------------------------------------------------------ *)

(* test_machine steps cost ~1.3 ms, so the default SLOs here are loose
   enough that a light load completes everything; the overload cases
   tighten them explicitly. *)
let config ?chaos ?topology ?(queue_capacity = 8) ?(timeout_us = 100_000.) () =
  {
    Server.machine;
    topology;
    world_size = 4;
    head_dim = 32;
    slo = { Slo.ttft_us = 20_000.; tpot_us = 5_000. };
    queue_capacity;
    max_batch = 8;
    kv_capacity = 2_048;
    timeout_us;
    chaos;
  }

let trace ~seed ~requests ~rate =
  Trace_gen.generate ~prompt_mean:32 ~decode_mean:4 ~seed ~requests
    (Trace_gen.Poisson { rate_rps = rate })

let check_invariants name (r : Server.report) =
  Alcotest.(check bool) (name ^ ": conserved") true (Server.conservation_ok r);
  Alcotest.(check int) (name ^ ": nothing in flight") 0 r.Server.r_in_flight;
  (* Shed and failed requests never enter the latency percentiles. *)
  Alcotest.(check int)
    (name ^ ": ttft samples = completions")
    r.Server.r_completed r.Server.r_ttft.Slo.d_count;
  Alcotest.(check int)
    (name ^ ": tpot samples = completions")
    r.Server.r_completed r.Server.r_tpot.Slo.d_count;
  Alcotest.(check bool)
    (name ^ ": slo_met bounded by completions")
    true
    (r.Server.r_slo_met <= r.Server.r_completed);
  Alcotest.(check bool) (name ^ ": failed non-negative") true (r.Server.r_failed >= 0)

let qcheck_conservation =
  QCheck.Test.make ~count:8
    ~name:"offered = completed + shed + failed at drain (clean)"
    QCheck.(triple (int_range 1 1000) (int_range 5 25) (int_range 2 12))
    (fun (seed, requests, queue_capacity) ->
      let requests = max 5 requests and queue_capacity = max 2 queue_capacity in
      (* Overload rate: a small queue under 20k rps must shed. *)
      let tr = trace ~seed ~requests ~rate:20_000. in
      let r = Server.run (config ~queue_capacity ~timeout_us:5_000. ()) tr in
      Server.conservation_ok r
      && r.Server.r_offered = requests
      && r.Server.r_ttft.Slo.d_count = r.Server.r_completed)

let qcheck_conservation_crash =
  QCheck.Test.make ~count:6
    ~name:"conservation holds under a mid-trace rank crash"
    QCheck.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, crash_ranks) ->
      let crash_ranks = 1 + (abs crash_ranks mod 3) in
      let tr = trace ~seed ~requests:15 ~rate:2_000. in
      let chaos = { Server.ch_seed = seed; ch_crash_ranks = crash_ranks } in
      let r = Server.run (config ~chaos ()) tr in
      Server.conservation_ok r
      && r.Server.r_ttft.Slo.d_count = r.Server.r_completed
      && r.Server.r_world_end >= 4 - crash_ranks)

let test_overload_sheds () =
  let tr = trace ~seed:3 ~requests:40 ~rate:50_000. in
  let r = Server.run (config ~queue_capacity:4 ~timeout_us:5_000. ()) tr in
  check_invariants "overload" r;
  Alcotest.(check bool) "backpressure shed some requests" true
    (r.Server.r_shed_queue_full > 0);
  Alcotest.(check bool) "queue pressure degraded the tier" true
    (r.Server.r_tier_changes > 0)

let test_clean_run_completes_all () =
  let tr = trace ~seed:11 ~requests:12 ~rate:500. in
  let r = Server.run (config ()) tr in
  check_invariants "clean" r;
  Alcotest.(check int) "all completed" 12 r.Server.r_completed;
  Alcotest.(check int) "nothing shed" 0
    (r.Server.r_shed_queue_full + r.Server.r_shed_deadline
   + r.Server.r_shed_timeout)

let test_crash_run () =
  let tr = trace ~seed:5 ~requests:20 ~rate:2_000. in
  let chaos = { Server.ch_seed = 7; ch_crash_ranks = 1 } in
  let r = Server.run (config ~chaos ()) tr in
  check_invariants "crash" r;
  Alcotest.(check int) "one rank lost" 3 r.Server.r_world_end;
  Alcotest.(check bool) "the crash step is visible" true
    (r.Server.r_faulted_steps >= 1)

let test_report_determinism () =
  let serve ?chaos () =
    Server.run (config ?chaos ~queue_capacity:4 ())
      (trace ~seed:13 ~requests:25 ~rate:20_000.)
  in
  Alcotest.(check string) "clean report byte-identical"
    (Server.report_to_string (serve ()))
    (Server.report_to_string (serve ()));
  let chaos = { Server.ch_seed = 3; ch_crash_ranks = 2 } in
  Alcotest.(check string) "crash report byte-identical"
    (Server.report_to_string (serve ~chaos ()))
    (Server.report_to_string (serve ~chaos ()))

let test_journal_events () =
  let telemetry = Tilelink_obs.Telemetry.create () in
  let tr = trace ~seed:3 ~requests:40 ~rate:50_000. in
  let r =
    Server.run ~telemetry (config ~queue_capacity:4 ~timeout_us:5_000. ()) tr
  in
  let entries =
    Tilelink_obs.Journal.entries (Tilelink_obs.Telemetry.journal telemetry)
  in
  let count p = List.length (List.filter p entries) in
  let sheds =
    count (fun e ->
        match e.Tilelink_obs.Journal.event with
        | Tilelink_obs.Journal.Request_shed _ -> true
        | _ -> false)
  in
  let tiers =
    count (fun e ->
        match e.Tilelink_obs.Journal.event with
        | Tilelink_obs.Journal.Tier_change _ -> true
        | _ -> false)
  in
  Alcotest.(check int) "one journal entry per shed"
    (r.Server.r_shed_queue_full + r.Server.r_shed_deadline
   + r.Server.r_shed_timeout)
    sheds;
  Alcotest.(check int) "one journal entry per tier change"
    r.Server.r_tier_changes tiers

let () =
  Alcotest.run "serve"
    [
      ( "trace",
        [
          Alcotest.test_case "seeded determinism" `Quick test_trace_determinism;
          QCheck_alcotest.to_alcotest qcheck_trace_shape;
          Alcotest.test_case "csv parse" `Quick test_trace_parse;
          Alcotest.test_case "csv line endings" `Quick
            test_trace_parse_line_endings;
        ] );
      ( "admission",
        [
          Alcotest.test_case "backpressure" `Quick test_admission_backpressure;
          Alcotest.test_case "deadline shed" `Quick test_admission_deadline;
        ] );
      ( "degrade",
        [ Alcotest.test_case "ladder" `Quick test_degrade_ladder ] );
      ( "conservation",
        [
          QCheck_alcotest.to_alcotest qcheck_conservation;
          QCheck_alcotest.to_alcotest qcheck_conservation_crash;
          Alcotest.test_case "overload sheds" `Quick test_overload_sheds;
          Alcotest.test_case "clean run completes all" `Quick
            test_clean_run_completes_all;
          Alcotest.test_case "rank crash" `Quick test_crash_run;
          Alcotest.test_case "byte determinism" `Quick test_report_determinism;
          Alcotest.test_case "journal events" `Quick test_journal_events;
        ] );
    ]
