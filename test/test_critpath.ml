(* Tests for the causal profiler: span recording, critical-path
   extraction, attribution conservation, and regression gating.

   The central property is conservation — the attribution buckets sum
   to the makespan, exactly on synthetic pipelines and within one time
   unit on every shipped program — plus the two anchor points of the
   overlap-efficiency scale: a serial schedule exposes all of its
   communication (efficiency ~0) and a fully-overlapped compute-bound
   schedule hides all of it, with the hidden time equal to the measured
   speedup over the serial schedule. *)

open Tilelink_obs
open Tilelink_core
open Tilelink_machine

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Synthetic schedules built through the real recording API            *)
(* ------------------------------------------------------------------ *)

(* Serial schedule: one worker alternates compute and copy, back to
   back.  Every copy sits on the critical path, so exposed = total and
   the efficiency is exactly 0. *)
let record_serial store stages =
  let worker = Span.fresh_worker store in
  let t = ref 0.0 in
  List.iter
    (fun (c, d) ->
      Span.record_task store ~kind:Span.Compute ~label:"c" ~rank:0 ~worker
        ~t0:!t
        ~t1:(!t +. c);
      t := !t +. c;
      Span.record_task store ~kind:Span.Copy ~label:"x" ~rank:0 ~worker
        ~t0:!t
        ~t1:(!t +. d);
      t := !t +. d)
    stages;
  !t

(* Overlapped schedule: the compute chain runs back to back on one
   worker while a second worker performs each stage's copy strictly
   inside the next stage's compute window (the compute-bound case:
   every copy is shorter than the compute that hides it).  The last
   stage has no copy, so the critical path is the pure compute chain
   and every copy is hidden. *)
let record_overlapped store stages =
  let compute_worker = Span.fresh_worker store in
  let copy_worker = Span.fresh_worker store in
  let t = ref 0.0 in
  let n = List.length stages in
  List.iteri
    (fun i (c, d) ->
      Span.record_task store ~kind:Span.Compute ~label:"c" ~rank:0
        ~worker:compute_worker ~t0:!t
        ~t1:(!t +. c);
      t := !t +. c;
      if i < n - 1 then
        (* Copy of this stage's tile rides under the next compute. *)
        Span.record_task store ~kind:Span.Copy ~label:"x" ~rank:0
          ~worker:copy_worker ~t0:!t
          ~t1:(!t +. d))
    stages;
  !t

(* Random stage list (compute duration, copy duration), integral so
   the float sums are exact; copies are kept below their own stage's
   compute here and re-clamped by [compute_bound] where a property
   needs full overlap. *)
let stages_gen =
  QCheck.Gen.(
    list_size (int_range 2 12)
      (map
         (fun (c, d) -> (float_of_int c, float_of_int (min d (c - 1))))
         (pair (int_range 2 50) (int_range 1 49))))

let attribution_of store ~makespan =
  Attribution.of_spans ~makespan (Span.spans store)

let prop_serial_conserved_and_exposed =
  QCheck.Test.make ~name:"serial schedule: conserved, efficiency 0"
    ~count:200 (QCheck.make stages_gen) (fun stages ->
      let store = Span.create () in
      let makespan = record_serial store stages in
      let a = attribution_of store ~makespan in
      Attribution.conserved ~tolerance:1e-6 a
      && Float.abs a.Attribution.efficiency <= 1e-9)

(* Clamp each copy strictly under the compute that hides it — the
   *next* stage's — and drop the last stage's copy (nothing left to
   hide it behind).  Both schedules then perform identical work, so
   their makespans are directly comparable. *)
let compute_bound stages =
  let rec fix = function
    | (c, raw) :: ((c2, _) :: _ as rest) ->
      (c, Float.max 1.0 (Float.min raw (c2 -. 1.0))) :: fix rest
    | [ (c, _) ] -> [ (c, 0.0) ]
    | [] -> []
  in
  fix stages

let prop_overlap_matches_speedup =
  QCheck.Test.make
    ~name:"compute-bound overlap: conserved, efficiency 1, hidden time = \
           serial speedup"
    ~count:200 (QCheck.make stages_gen) (fun raw_stages ->
      let stages = compute_bound raw_stages in
      let serial_store = Span.create () in
      let serial_makespan = record_serial serial_store stages in
      let serial = attribution_of serial_store ~makespan:serial_makespan in
      let olap_store = Span.create () in
      let olap_makespan = record_overlapped olap_store stages in
      let olap = attribution_of olap_store ~makespan:olap_makespan in
      Attribution.conserved ~tolerance:1e-6 serial
      && Attribution.conserved ~tolerance:1e-6 olap
      && Float.abs serial.Attribution.efficiency <= 1e-9
      && Float.abs (olap.Attribution.efficiency -. 1.0) <= 1e-9
      && Float.abs (olap.Attribution.hidden_comm -. olap.Attribution.total_comm)
         <= 1e-6
      (* Measured speedup over the serial schedule is exactly the
         communication the overlapped schedule hid. *)
      && Float.abs
           (serial_makespan -. olap_makespan -. olap.Attribution.hidden_comm)
         <= 1e-6)

(* Random DAGs with notify/wait edges: producer computes then notifies,
   consumer blocks and resolves against the delivery, both chained in
   program order.  Conservation must hold whatever the timings. *)
let notify_wait_gen =
  QCheck.Gen.(
    list_size (int_range 1 15)
      (triple (int_range 1 40) (int_range 1 40) (int_range 0 30)))

let prop_notify_wait_conserved =
  QCheck.Test.make
    ~name:"producer/consumer with notify->wait edges stays conserved"
    ~count:200 (QCheck.make notify_wait_gen) (fun stages ->
      let store = Span.create () in
      let producer = Span.fresh_worker store in
      let consumer = Span.fresh_worker store in
      let pt = ref 0.0 and ct = ref 0.0 in
      List.iteri
        (fun i (c_prod, c_cons, head_start) ->
          let c_prod = float_of_int c_prod
          and c_cons = float_of_int c_cons
          and head_start = float_of_int head_start in
          Span.record_task store ~kind:Span.Compute ~label:"produce" ~rank:0
            ~worker:producer ~t0:!pt
            ~t1:(!pt +. c_prod);
          pt := !pt +. c_prod;
          let pred = Span.cursor store ~worker:producer in
          Span.record_notify ?pred store ~label:"notify" ~rank:0 ~key:"k"
            ~value:(i + 1) ~t:!pt;
          (* Consumer may already be past the delivery (head start) or
             may block until it lands. *)
          let wait_t0 = Float.max 0.0 (!ct -. head_start) in
          let wait_t1 = Float.max wait_t0 !pt in
          if wait_t1 > wait_t0 then
            Span.record_wait store ~label:"wait" ~rank:1 ~worker:consumer
              ~key:"k" ~threshold:(i + 1) ~t0:wait_t0 ~t1:wait_t1;
          ct := Float.max !ct wait_t1;
          Span.record_task store ~kind:Span.Compute ~label:"consume" ~rank:1
            ~worker:consumer ~t0:!ct
            ~t1:(!ct +. c_cons);
          ct := !ct +. c_cons)
        stages;
      let makespan = Float.max !pt !ct in
      let a = attribution_of store ~makespan in
      Attribution.conserved ~tolerance:1e-6 a)

(* ------------------------------------------------------------------ *)
(* Critical-path structure on a hand-built scenario                    *)
(* ------------------------------------------------------------------ *)

(* rank 0 computes [0,10], notifies; rank 1 blocks [2,10] on the
   signal, then computes [10,18].  The path must be: compute(r0),
   wait(r1), compute(r1), with the wait charged 8 and blamed on the
   key. *)
let test_critpath_shape () =
  let store = Span.create () in
  let w0 = Span.fresh_worker store in
  let w1 = Span.fresh_worker store in
  Span.record_task store ~kind:Span.Compute ~label:"a" ~rank:0 ~worker:w0
    ~t0:0.0 ~t1:10.0;
  let pred = Span.cursor store ~worker:w0 in
  Span.record_notify ?pred store ~label:"sig" ~rank:0 ~key:"pc[0]" ~value:1
    ~t:10.0;
  Span.record_wait store ~label:"wait" ~rank:1 ~worker:w1 ~key:"pc[0]"
    ~threshold:1 ~t0:2.0 ~t1:10.0;
  Span.record_task store ~kind:Span.Compute ~label:"b" ~rank:1 ~worker:w1
    ~t0:10.0 ~t1:18.0;
  let cp = Option.get (Critpath.extract ~makespan:18.0 (Span.spans store)) in
  let kinds =
    List.map (fun s -> s.Critpath.span.Span.kind) cp.Critpath.path
  in
  Alcotest.(check bool)
    "path is compute, notify, wait, compute" true
    (kinds = [ Span.Compute; Span.Notify; Span.Wait_stall; Span.Compute ]
    || kinds = [ Span.Compute; Span.Wait_stall; Span.Compute ]);
  check_float "no tail slack" 0.0 cp.Critpath.tail_slack;
  let charged =
    List.fold_left (fun acc s -> acc +. s.Critpath.charged) 0.0
      cp.Critpath.path
  in
  let gaps =
    List.fold_left (fun acc s -> acc +. s.Critpath.gap_before) 0.0
      cp.Critpath.path
  in
  check_float "charges + gaps = makespan" 18.0 (charged +. gaps);
  (match Critpath.key_blame cp with
  | [ (key, blame) ] ->
    Alcotest.(check string) "blamed key" "pc[0]" key;
    check_float "blocked duration on the channel" 8.0 blame
  | other ->
    Alcotest.failf "expected one blamed key, got %d" (List.length other));
  let a = attribution_of store ~makespan:18.0 in
  (* Causal charging: the consumer's block [2,10] is covered by the
     producer's compute [0,10] reached through the notify edge, so the
     wall-clock lands in the compute bucket — speeding the producer up
     is what would shrink the makespan. *)
  check_float "wait stall telescopes to the producer" 0.0
    a.Attribution.buckets.Attribution.wait_stall;
  check_float "compute bucket carries both sides" 18.0
    a.Attribution.buckets.Attribution.compute

let test_empty_spans_all_straggler () =
  let a = Attribution.of_spans ~makespan:42.0 [] in
  Alcotest.(check bool) "conserved" true (Attribution.conserved a);
  check_float "all straggler" 42.0 a.Attribution.buckets.Attribution.straggler;
  check_float "efficiency defaults to 1" 1.0 a.Attribution.efficiency

(* ------------------------------------------------------------------ *)
(* Conservation on every shipped program                               *)
(* ------------------------------------------------------------------ *)

let run_with_telemetry program =
  let telemetry = Telemetry.create () in
  let cluster =
    Cluster.create Calib.test_machine
      ~world_size:(Program.world_size program)
  in
  let result = Runtime.run ~telemetry cluster program in
  (result, Span.spans (Telemetry.spans telemetry))

let test_suite_conservation () =
  let programs = Tilelink_workloads.Suite.programs () in
  Alcotest.(check bool)
    "sweep covers the full corpus" true
    (List.length programs >= 25);
  List.iter
    (fun (name, program) ->
      let result, spans = run_with_telemetry program in
      if spans = [] then Alcotest.failf "%s: no spans recorded" name;
      let a = Attribution.of_spans ~makespan:result.Runtime.makespan spans in
      if not (Attribution.conserved a) then
        Alcotest.failf "%s: bucket sum %.3f vs makespan %.3f" name
          (Attribution.bucket_sum a) a.Attribution.makespan)
    programs

let test_critpath_deterministic () =
  let _, program = List.hd (Tilelink_workloads.Suite.programs ()) in
  let render () =
    let result, spans = run_with_telemetry program in
    match Critpath.extract ~makespan:result.Runtime.makespan spans with
    | None -> "none"
    | Some cp -> Json.to_string (Critpath.to_json cp)
  in
  Alcotest.(check string) "byte-identical across runs" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

let rows =
  [
    { Regress.r_config = "llama"; r_kernel = "ag_gemm"; r_makespan_us = 100.0 };
    { Regress.r_config = "llama"; r_kernel = "gemm_rs"; r_makespan_us = 50.0 };
  ]

let test_regress_self_diff_clean () =
  let report = Regress.compare_rows ~baseline:rows ~candidate:rows () in
  Alcotest.(check bool) "self-diff passes" true (Regress.ok report);
  Alcotest.(check int) "no regressions" 0 report.Regress.regressions

let test_regress_flags_slowdown () =
  let slow =
    List.map
      (fun r -> { r with Regress.r_makespan_us = r.Regress.r_makespan_us *. 1.06 })
      rows
  in
  let report = Regress.compare_rows ~baseline:rows ~candidate:slow () in
  Alcotest.(check bool) "6% over a 5% gate fails" false (Regress.ok report);
  Alcotest.(check int) "both rows regressed" 2 report.Regress.regressions;
  let within =
    List.map
      (fun r -> { r with Regress.r_makespan_us = r.Regress.r_makespan_us *. 1.04 })
      rows
  in
  Alcotest.(check bool) "4% within the 5% gate passes" true
    (Regress.ok (Regress.compare_rows ~baseline:rows ~candidate:within ()))

let test_regress_missing_row_is_regression () =
  let report =
    Regress.compare_rows ~baseline:rows ~candidate:[ List.hd rows ] ()
  in
  Alcotest.(check bool) "dropped row fails the gate" false (Regress.ok report);
  (* A row only the candidate has is informational, not a failure. *)
  let added =
    Regress.compare_rows ~baseline:[ List.hd rows ] ~candidate:rows ()
  in
  Alcotest.(check bool) "added row passes" true (Regress.ok added)

let test_regress_parses_bench_artifact () =
  let doc =
    {|{"suite":"smoke","rows":[
        {"config":"smoke","kernel":"ag_gemm","makespan_us":43.0,"overlap_ratio":0.5},
        {"config":"smoke","kernel":"gemm_rs","makespan_us":79.6,"overlap_ratio":0.4}]}|}
  in
  match Regress.rows_of_string doc with
  | Error msg -> Alcotest.failf "rows_of_string: %s" msg
  | Ok parsed ->
    Alcotest.(check int) "two rows" 2 (List.length parsed);
    Alcotest.(check bool) "keys preserved" true
      ((List.hd parsed).Regress.r_config = "smoke")

(* ------------------------------------------------------------------ *)
(* Journal severity filter                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_min_level () =
  let j = Journal.create () in
  Journal.record j ~t:1.0
    (Journal.Signal_set { key = "k"; rank = 0; amount = 1; value = 1 });
  Journal.record j ~t:2.0
    (Journal.Fault_injected { kind = "drop"; key = "k"; rank = 0 });
  Journal.record j ~t:3.0
    (Journal.Stall_detected { key = "k"; rank = 0; threshold = 1; value = 0 });
  Journal.record j ~t:4.0 (Journal.Deadlock { message = "stuck"; blocked = 2 });
  let count ?min_level () = List.length (Journal.entries ?min_level j) in
  Alcotest.(check int) "no filter keeps all" 4 (count ());
  Alcotest.(check int) "debug keeps all" 4 (count ~min_level:Journal.Debug ());
  Alcotest.(check int) "info drops chatter" 3 (count ~min_level:Journal.Info ());
  Alcotest.(check int) "warn keeps stall + deadlock" 2
    (count ~min_level:Journal.Warn ());
  Alcotest.(check int) "error keeps deadlock only" 1
    (count ~min_level:Journal.Error ());
  (* The JSON export carries the level and respects the filter. *)
  let doc = Journal.to_json ~min_level:Journal.Warn j in
  match Json.member "entries" doc with
  | Some (Json.List entries) ->
    Alcotest.(check int) "filtered export" 2 (List.length entries);
    Alcotest.(check bool) "entries carry a level field" true
      (List.for_all
         (fun e ->
           match Option.bind (Json.member "level" e) Json.to_str with
           | Some ("warn" | "error") -> true
           | _ -> false)
         entries)
  | _ -> Alcotest.fail "journal export lacks entries"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "critpath"
    [
      ( "conservation",
        [
          qc prop_serial_conserved_and_exposed;
          qc prop_overlap_matches_speedup;
          qc prop_notify_wait_conserved;
          Alcotest.test_case "empty spans" `Quick
            test_empty_spans_all_straggler;
          Alcotest.test_case "all shipped programs" `Quick
            test_suite_conservation;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "shape and blame" `Quick test_critpath_shape;
          Alcotest.test_case "deterministic" `Quick
            test_critpath_deterministic;
        ] );
      ( "regress",
        [
          Alcotest.test_case "self-diff clean" `Quick
            test_regress_self_diff_clean;
          Alcotest.test_case "flags slowdown" `Quick
            test_regress_flags_slowdown;
          Alcotest.test_case "missing row" `Quick
            test_regress_missing_row_is_regression;
          Alcotest.test_case "parses bench artifact" `Quick
            test_regress_parses_bench_artifact;
        ] );
      ( "journal levels",
        [ Alcotest.test_case "min_level filter" `Quick test_journal_min_level ] );
    ]
