(* Tests for the baseline models and the cost model: the qualitative
   orderings the paper's evaluation rests on must hold structurally,
   not just at one lucky shape. *)

open Tilelink_machine
open Tilelink_workloads
open Tilelink_baselines

let spec = Calib.h800
let world = 8

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_tile_efficiency_bounds () =
  Alcotest.(check (float 1e-9)) "128x128 is full" 1.0
    (Cost.gemm_tile_efficiency ~tm:128 ~tn:128);
  Alcotest.(check bool) "small tiles degrade" true
    (Cost.gemm_tile_efficiency ~tm:32 ~tn:128 < 1.0);
  Alcotest.(check bool) "never above 1" true
    (Cost.gemm_tile_efficiency ~tm:512 ~tn:512 <= 1.0)

let test_wave_quantization_steps () =
  (* 133 tiles on 132 SMs need 2 waves; 132 need 1. *)
  let t1 =
    Cost.gemm_kernel_time spec ~sms:132 ~m:(132 * 128) ~n:128 ~k:256 ~tm:128
      ~tn:128
  in
  let t2 =
    Cost.gemm_kernel_time spec ~sms:132 ~m:(133 * 128) ~n:128 ~k:256 ~tm:128
      ~tn:128
  in
  Alcotest.(check (float 1e-6)) "one extra tile doubles the time" 2.0
    (t2 /. t1)

let test_gemm_kernel_time_bounded_by_peak () =
  let m, n, k = (4096, 4096, 4096) in
  let t = Cost.gemm_kernel_time spec ~sms:132 ~m ~n ~k ~tm:128 ~tn:128 in
  let ideal =
    Tilelink_tensor.Linalg.gemm_flops ~m ~n ~k /. Spec.total_flops spec
  in
  Alcotest.(check bool) "never beats peak" true (t >= ideal)

let test_memory_pass_saturates () =
  let few = Cost.hbm_share spec ~sms:4 in
  let quarter = Cost.hbm_share spec ~sms:33 in
  let all = Cost.hbm_share spec ~sms:132 in
  Alcotest.(check bool) "sub-linear growth" true (few < quarter);
  Alcotest.(check (float 1.0)) "saturated at a quarter" quarter all

let test_unfused_attention_memory_bound_at_long_context () =
  let short =
    Cost.unfused_attention_time spec ~batch_heads:32 ~sq:2048 ~skv:16384
      ~d:128
  in
  let long =
    Cost.unfused_attention_time spec ~batch_heads:32 ~sq:16384 ~skv:131072
      ~d:128
  in
  (* 8x rows x 8x cols: compute grows 64x, memory grows 64x, so the
     total grows at least 50x — and must dwarf flash. *)
  Alcotest.(check bool) "superlinear growth" true (long > 50.0 *. short)

(* ------------------------------------------------------------------ *)
(* MLP baselines                                                       *)
(* ------------------------------------------------------------------ *)

let test_decompose_slower_than_nonoverlap_everywhere () =
  List.iter
    (fun (shape : Shapes.mlp) ->
      let i_per_rank = shape.Shapes.i / world in
      let non =
        Nonoverlap.ag_gemm_time spec ~world_size:world ~m:shape.Shapes.s
          ~k:shape.Shapes.h ~n:(2 * i_per_rank)
      in
      let dec =
        Decompose.ag_gemm_time spec ~world_size:world ~m:shape.Shapes.s
          ~k:shape.Shapes.h ~n:(2 * i_per_rank)
      in
      Alcotest.(check bool)
        (shape.Shapes.mlp_name ^ ": decomposition loses")
        true (dec > non))
    Shapes.mlp_configs

let test_pipeline_makespan_limits () =
  (* All-comm: makespan ~ sum of comm. All-compute: ~ sum of compute. *)
  let launch = 0.0 and host_sync = 0.0 in
  let comm_bound =
    Decompose.pipeline_makespan
      ~comm_times:[ 100.0; 100.0; 100.0 ]
      ~compute_times:[ 1.0; 1.0; 1.0 ] ~host_sync ~launch
  in
  Alcotest.(check (float 2.0)) "comm bound" 301.0 comm_bound;
  let compute_bound =
    Decompose.pipeline_makespan ~comm_times:[ 1.0; 1.0; 1.0 ]
      ~compute_times:[ 100.0; 100.0; 100.0 ]
      ~host_sync ~launch
  in
  Alcotest.(check (float 2.0)) "compute bound" 301.0 compute_bound

let test_pipeline_host_sync_accumulates () =
  let base =
    Decompose.pipeline_makespan ~comm_times:[ 1.0; 1.0 ]
      ~compute_times:[ 1.0; 1.0 ] ~host_sync:0.0 ~launch:0.0
  in
  let with_sync =
    Decompose.pipeline_makespan ~comm_times:[ 1.0; 1.0 ]
      ~compute_times:[ 1.0; 1.0 ] ~host_sync:10.0 ~launch:0.0
  in
  Alcotest.(check bool) "syncs add up" true (with_sync >= base +. 20.0)

let test_flux_beats_nonoverlap_on_ag_gemm () =
  let non =
    Nonoverlap.ag_gemm_time spec ~world_size:world ~m:8192 ~k:4096 ~n:2752
  in
  let flux = Flux.ag_gemm_time spec ~world_size:world ~m:8192 ~k:4096 ~n:2752 in
  Alcotest.(check bool) "fusion wins on AG+GEMM" true (flux < non)

let test_flux_coupled_config_is_coupled () =
  let c = Flux.ag_gemm_config ~world_size:world in
  Alcotest.(check bool) "tiles equal" true
    (c.Tilelink_core.Design_space.comm_tile
    = c.Tilelink_core.Design_space.compute_tile)

(* ------------------------------------------------------------------ *)
(* MoE baselines                                                       *)
(* ------------------------------------------------------------------ *)

let moe_of n = Moe_baselines.spec_of_shape (List.nth Shapes.moe_configs n) ~world_size:world

let test_moe_fusion_ladder () =
  (* cublas >= cutlass >= vllm on both parts, for every shape. *)
  List.iteri
    (fun idx (_ : Shapes.moe) ->
      let moe = moe_of idx in
      let route = Moe.routing moe ~seed:23 in
      let c1 = Moe_baselines.cublas_part1 spec moe route in
      let t1 = Moe_baselines.cutlass_part1 spec moe route in
      let v1 = Moe_baselines.vllm_part1 spec moe route in
      Alcotest.(check bool) "part1 ladder" true (c1 >= t1 && t1 >= v1);
      let c2 = Moe_baselines.cublas_part2 spec moe route in
      let t2 = Moe_baselines.cutlass_part2 spec moe route in
      let v2 = Moe_baselines.vllm_part2 spec moe route in
      Alcotest.(check bool) "part2 ladder" true (c2 >= t2 && t2 >= v2))
    Shapes.moe_configs

let test_moe_more_experts_hurts_cublas_only () =
  (* MoE-1 (E=8) vs MoE-2 (E=32), same compute volume: eager per-expert
     dispatch degrades sharply, fused group GEMM barely changes. *)
  let moe8 = moe_of 0 and moe32 = moe_of 1 in
  let r8 = Moe.routing moe8 ~seed:23 and r32 = Moe.routing moe32 ~seed:23 in
  let cublas_ratio =
    Moe_baselines.cublas_part1 spec moe32 r32
    /. Moe_baselines.cublas_part1 spec moe8 r8
  in
  let vllm_ratio =
    Moe_baselines.vllm_part1 spec moe32 r32
    /. Moe_baselines.vllm_part1 spec moe8 r8
  in
  Alcotest.(check bool) "cublas degrades much faster" true
    (cublas_ratio > 1.5 && vllm_ratio < 1.3)

let test_group_gemm_beats_per_expert () =
  let moe = moe_of 2 in
  let route = Moe.routing moe ~seed:23 in
  Alcotest.(check bool) "grouped wins" true
    (Moe_baselines.group_gemm_time spec route ~n:192 ~k:2048
    < Moe_baselines.per_expert_gemm_time spec route ~n:192 ~k:2048)

(* ------------------------------------------------------------------ *)
(* Attention baselines                                                 *)
(* ------------------------------------------------------------------ *)

let attn seq =
  {
    Attention.batch_heads = 32;
    seq;
    head_dim = 128;
    world_size = world;
    causal = false;
  }

let test_attention_ordering () =
  List.iter
    (fun seq ->
      let a = attn seq in
      let torch = Attention_baselines.torch_time spec a in
      let ring = Attention_baselines.ring_attention_time spec a in
      let flash = Attention.flash_only_time spec a ~config:Attention.default_config in
      Alcotest.(check bool) "torch slowest" true (torch > ring);
      Alcotest.(check bool) "ring above compute-only flash" true
        (ring > flash))
    [ 16384; 65536 ]

let test_overlap_report_identity () =
  let r =
    Attention_baselines.overlap_report ~comp_only:100.0 ~comm_only:50.0
      ~overlapped:120.0
  in
  Alcotest.(check (float 1e-9)) "ratio formula" 0.6
    r.Attention_baselines.ratio

let test_kv_allgather_scales_with_world () =
  let t2 = Attention_baselines.kv_allgather_time spec (attn 16384) in
  let a4 = { (attn 16384) with Attention.world_size = 2 } in
  let t4 = Attention_baselines.kv_allgather_time spec a4 in
  (* Fewer ranks -> less data received per rank. *)
  Alcotest.(check bool) "8 ranks gather more" true (t2 > t4)

(* ------------------------------------------------------------------ *)
(* Trace-based overlap report                                          *)
(* ------------------------------------------------------------------ *)

let test_report_interval_algebra () =
  let merged =
    Report.merge_intervals [ (0.0, 2.0); (1.0, 3.0); (5.0, 6.0) ]
  in
  Alcotest.(check int) "two intervals" 2 (List.length merged);
  let inter = Report.intersect [ (0.0, 3.0); (5.0, 6.0) ] [ (2.0, 5.5) ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "intersection"
    [ (2.0, 3.0); (5.0, 5.5) ]
    inter

let test_report_measures_overlap () =
  let trace = Tilelink_sim.Trace.create () in
  let add lane t0 t1 =
    Tilelink_sim.Trace.add trace ~rank:0 ~lane ~label:"x" ~t0 ~t1
  in
  add Tilelink_sim.Trace.Compute_sm 0.0 10.0;
  add Tilelink_sim.Trace.Dma 5.0 15.0;
  add Tilelink_sim.Trace.Wait 15.0 16.0;
  let r = Report.rank_report trace ~rank:0 in
  Alcotest.(check (float 1e-9)) "compute" 10.0 r.Report.compute_busy;
  Alcotest.(check (float 1e-9)) "comm" 10.0 r.Report.comm_busy;
  Alcotest.(check (float 1e-9)) "overlapped" 5.0 r.Report.overlapped;
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Report.overlap_ratio r);
  Alcotest.(check (float 1e-9)) "waits" 1.0 r.Report.wait_time

let test_report_on_real_kernel () =
  (* The overlapped AG+GEMM at paper scale must show substantial
     measured overlap on every rank. *)
  let cluster = Cluster.create ~trace_enabled:true spec ~world_size:world in
  let config =
    {
      Tilelink_core.Design_space.comm_tile = (512, 128);
      compute_tile = (128, 128);
      comm_order = Tilelink_core.Tile.Ring_from_self { segments = world };
      compute_order = Tilelink_core.Tile.Ring_from_self { segments = world };
      binding = Tilelink_core.Design_space.Comm_on_dma;
      stages = 2;
      micro_block = 0;
    }
  in
  let program =
    Mlp.ag_gemm_program ~config
      { Mlp.m = 8192; k = 4096; n = 2752; world_size = world }
      ~spec_gpu:spec
  in
  ignore (Tilelink_core.Runtime.run cluster program);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Format.asprintf "%a" Report.pp r)
        true
        (Report.overlap_ratio r > 0.5))
    (Report.all_ranks (Cluster.trace cluster) ~world_size:world)

(* ------------------------------------------------------------------ *)
(* End-to-end model                                                    *)
(* ------------------------------------------------------------------ *)

let test_models_cover_paper_set () =
  Alcotest.(check int) "eight models" 8 (List.length Model.models);
  Alcotest.(check int) "three moe" 3
    (List.length (List.filter Model.is_moe Model.models))

let test_torch_layer_decomposes () =
  let llm = List.hd Model.models in
  let layer = Torch_model.torch_layer_time spec llm ~world_size:world in
  let mlp =
    Torch_model.torch_mlp_time spec ~world_size:world ~hidden:llm.Model.hidden
      ~intermediate:llm.Model.intermediate
  in
  Alcotest.(check bool) "layer > its MLP part" true (layer > mlp)

let test_two_node_dilutes_speedup () =
  let llm = List.hd Model.models in
  let torch = 1000.0 and tl = 800.0 in
  let torch16 =
    Model.two_node_time spec llm ~world_size:world ~single_node_time:torch
  in
  let tl16 =
    Model.two_node_time spec llm ~world_size:world ~single_node_time:tl
  in
  Alcotest.(check bool) "speedup strictly diluted" true
    (torch16 /. tl16 < torch /. tl);
  Alcotest.(check bool) "same absolute overhead" true
    (Float.abs (torch16 -. torch -. (tl16 -. tl)) < 1e-9)

let test_layer_params_reasonable () =
  (* LLaMA-7B: ~200M parameters per layer. *)
  let p = Model.layer_params (List.hd Model.models) in
  Alcotest.(check bool) "order of magnitude" true (p > 1.5e8 && p < 3.0e8)

let prop_nonoverlap_monotonic_in_m =
  QCheck.Test.make ~name:"nonoverlap ag_gemm monotonic in M" ~count:30
    QCheck.(int_range 1 16)
    (fun mult ->
      let m1 = 1024 * mult and m2 = 1024 * (mult + 1) in
      Nonoverlap.ag_gemm_time spec ~world_size:world ~m:m1 ~k:1024 ~n:512
      <= Nonoverlap.ag_gemm_time spec ~world_size:world ~m:m2 ~k:1024 ~n:512)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "cost model",
        [
          Alcotest.test_case "tile efficiency" `Quick
            test_tile_efficiency_bounds;
          Alcotest.test_case "wave quantization" `Quick
            test_wave_quantization_steps;
          Alcotest.test_case "bounded by peak" `Quick
            test_gemm_kernel_time_bounded_by_peak;
          Alcotest.test_case "hbm saturation" `Quick
            test_memory_pass_saturates;
          Alcotest.test_case "unfused attention" `Quick
            test_unfused_attention_memory_bound_at_long_context;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "decompose loses everywhere" `Quick
            test_decompose_slower_than_nonoverlap_everywhere;
          Alcotest.test_case "pipeline limits" `Quick
            test_pipeline_makespan_limits;
          Alcotest.test_case "host sync accumulates" `Quick
            test_pipeline_host_sync_accumulates;
          Alcotest.test_case "flux beats non-overlap" `Quick
            test_flux_beats_nonoverlap_on_ag_gemm;
          Alcotest.test_case "flux is coupled" `Quick
            test_flux_coupled_config_is_coupled;
          qc prop_nonoverlap_monotonic_in_m;
        ] );
      ( "moe",
        [
          Alcotest.test_case "fusion ladder" `Quick test_moe_fusion_ladder;
          Alcotest.test_case "experts hurt cublas" `Quick
            test_moe_more_experts_hurts_cublas_only;
          Alcotest.test_case "group gemm wins" `Quick
            test_group_gemm_beats_per_expert;
        ] );
      ( "attention",
        [
          Alcotest.test_case "ordering" `Quick test_attention_ordering;
          Alcotest.test_case "overlap report" `Quick
            test_overlap_report_identity;
          Alcotest.test_case "kv allgather scaling" `Quick
            test_kv_allgather_scales_with_world;
        ] );
      ( "report",
        [
          Alcotest.test_case "interval algebra" `Quick
            test_report_interval_algebra;
          Alcotest.test_case "measures overlap" `Quick
            test_report_measures_overlap;
          Alcotest.test_case "real kernel" `Quick test_report_on_real_kernel;
        ] );
      ( "model",
        [
          Alcotest.test_case "paper model set" `Quick
            test_models_cover_paper_set;
          Alcotest.test_case "layer decomposes" `Quick
            test_torch_layer_decomposes;
          Alcotest.test_case "two-node dilution" `Quick
            test_two_node_dilutes_speedup;
          Alcotest.test_case "layer params" `Quick
            test_layer_params_reasonable;
        ] );
    ]
