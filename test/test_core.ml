(* Tests for the TileLink core: tiles, mappings, lowering, pipelining,
   consistency, and an end-to-end hand-built overlapped AG+GEMM. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

let shape = Shape.of_list
let check_float = Alcotest.(check (float 1e-6))

let tensor_close ?(atol = 1e-9) msg expected actual =
  let report = Check.compare ~atol expected actual in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" msg
       (Format.asprintf "%a" Check.pp_report report))
    true report.Check.within

(* ------------------------------------------------------------------ *)
(* Tile                                                                *)
(* ------------------------------------------------------------------ *)

let test_tile_grid () =
  let g = Tile.grid ~extent_m:10 ~extent_n:8 ~tile_m:4 ~tile_n:4 in
  Alcotest.(check int) "tiles_m" 3 (Tile.tiles_m g);
  Alcotest.(check int) "tiles_n" 2 (Tile.tiles_n g);
  Alcotest.(check (pair int int)) "ragged rows" (8, 10)
    (Tile.rows g (Tile.make ~tid_m:2 ~tid_n:0));
  let t = Tile.make ~tid_m:1 ~tid_n:1 in
  Alcotest.(check int) "linearize" 3 (Tile.linearize g t);
  Alcotest.(check bool) "roundtrip" true
    (Tile.equal t (Tile.of_linear g 3))

let test_tile_orders () =
  let g = Tile.grid ~extent_m:8 ~extent_n:4 ~tile_m:2 ~tile_n:4 in
  (* 4 row tiles, 1 col tile; 2 segments of 2 row tiles each. *)
  let row_ids order rank =
    List.map (fun t -> t.Tile.tid_m) (Tile.enumerate ~rank g order)
  in
  Alcotest.(check (list int)) "row major" [ 0; 1; 2; 3 ]
    (row_ids Tile.Row_major 0);
  Alcotest.(check (list int)) "ring from self rank1" [ 2; 3; 0; 1 ]
    (row_ids (Tile.Ring_from_self { segments = 2 }) 1);
  Alcotest.(check (list int)) "ring next rank1" [ 0; 1; 2; 3 ]
    (row_ids (Tile.Ring_prev_first { segments = 2 }) 1);
  Alcotest.(check (list int)) "ring next rank0" [ 2; 3; 0; 1 ]
    (row_ids (Tile.Ring_prev_first { segments = 2 }) 0)

let test_tile_order_covers_grid () =
  let g = Tile.grid ~extent_m:12 ~extent_n:6 ~tile_m:2 ~tile_n:3 in
  List.iter
    (fun order ->
      let tiles = Tile.enumerate ~rank:2 g order in
      Alcotest.(check int) "count" (Tile.tile_count g) (List.length tiles);
      let distinct = List.sort_uniq Tile.compare tiles in
      Alcotest.(check int) "distinct" (Tile.tile_count g)
        (List.length distinct))
    [
      Tile.Row_major;
      Tile.Column_major;
      Tile.Ring_from_self { segments = 3 };
      Tile.Ring_prev_first { segments = 6 };
    ]

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let test_static_mapping_paper_formulas () =
  (* M = 64, R = 4, C = 2, Tm = 8: M_per_rank = 16, M_per_channel = 8. *)
  let m = Mapping.static ~extent:64 ~ranks:4 ~channels_per_rank:2 ~tile:8 () in
  Alcotest.(check int) "tiles" 8 (Mapping.num_tiles m);
  Alcotest.(check int) "channels" 8 (Mapping.num_channels m);
  Alcotest.(check (pair int int)) "range of tile 3" (24, 32)
    (Mapping.shape_range m ~tid:3);
  Alcotest.(check int) "rank of tile 3" 1 (Mapping.rank_of m ~tid:3);
  Alcotest.(check int) "channel of tile 3" 3 (Mapping.channel_of m ~tid:3);
  Alcotest.(check (pair int int)) "split channel 5" (2, 1)
    (Mapping.split_channel m 5);
  Alcotest.(check int) "expected per channel" 1 (Mapping.expected m ~channel:0)

let test_static_mapping_multi_tile_channels () =
  (* Tm = 4 with 8-row channels: two producer tiles per channel. *)
  let m = Mapping.static ~extent:64 ~ranks:4 ~channels_per_rank:2 ~tile:4 () in
  Alcotest.(check int) "expected" 2 (Mapping.expected m ~channel:0);
  Alcotest.(check (list (pair int int))) "wait set for rows [4,20)"
    [ (0, 2); (1, 2); (2, 2) ]
    (Mapping.channels_for_range m ~lo:4 ~hi:20)

let test_static_mapping_ranks_for_range () =
  let m = Mapping.static ~extent:64 ~ranks:4 ~channels_per_rank:2 ~tile:8 () in
  Alcotest.(check (list int)) "one rank" [ 1 ]
    (Mapping.ranks_for_range m ~lo:16 ~hi:32);
  Alcotest.(check (list int)) "spanning" [ 0; 1; 2 ]
    (Mapping.ranks_for_range m ~lo:8 ~hi:33)

let test_static_mapping_src_shard () =
  let m = Mapping.static ~extent:64 ~ranks:4 ~channels_per_rank:2 ~tile:8 () in
  (* Tile 3 covers global rows [24,32) on rank 1 -> shard rows [8,16). *)
  Alcotest.(check (pair int int)) "shard-local" (8, 16)
    (Mapping.src_shard_range m ~tid:3)

let test_static_mapping_rejects_bad_config () =
  let rejected f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "uneven shard" true
    (rejected (fun () ->
         Mapping.static ~extent:10 ~ranks:4 ~channels_per_rank:1 ~tile:2 ()));
  Alcotest.(check bool) "tile > channel" true
    (rejected (fun () ->
         Mapping.static ~extent:64 ~ranks:4 ~channels_per_rank:2 ~tile:16 ()))

let test_dynamic_mapping () =
  (* 3 tiles with hand-written tables. *)
  let m =
    Mapping.dynamic ~ranks:2 ~channels_per_rank:2
      ~f_s_low:[| 0; 8; 4 |] ~f_s_high:[| 4; 12; 8 |]
      ~f_r:[| 0; 1; 0 |] ~f_c:[| 0; 3; 1 |] ()
  in
  Alcotest.(check bool) "dynamic" true (Mapping.is_dynamic m);
  Alcotest.(check (pair int int)) "range" (8, 12) (Mapping.shape_range m ~tid:1);
  Alcotest.(check int) "rank" 1 (Mapping.rank_of m ~tid:1);
  Alcotest.(check int) "channel" 3 (Mapping.channel_of m ~tid:1);
  Alcotest.(check int) "expected" 1 (Mapping.expected m ~channel:3);
  (* Rows [5, 9) intersect tiles 1 (no: [8,12) yes) and 2 ([4,8) yes). *)
  Alcotest.(check (list (pair int int))) "channels for range"
    [ (1, 1); (3, 1) ]
    (Mapping.channels_for_range m ~lo:5 ~hi:9)

let prop_static_mapping_consistent =
  QCheck.Test.make ~name:"static mapping: rank/channel consistent with rows"
    ~count:100
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 1 4))
    (fun (ranks, channels_per_rank, tiles_per_channel) ->
      let tile = 2 in
      let extent = ranks * channels_per_rank * tiles_per_channel * tile in
      let m = Mapping.static ~extent ~ranks ~channels_per_rank ~tile () in
      let ok = ref true in
      for tid = 0 to Mapping.num_tiles m - 1 do
        let lo, hi = Mapping.shape_range m ~tid in
        let rank = Mapping.rank_of m ~tid in
        let rows_per_rank = extent / ranks in
        if lo / rows_per_rank <> rank || (hi - 1) / rows_per_rank <> rank then
          ok := false;
        let channel = Mapping.channel_of m ~tid in
        let owner, _ = Mapping.split_channel m channel in
        if owner <> rank then ok := false
      done;
      (* Channel expected counts sum to the tile count. *)
      let sum = ref 0 in
      for c = 0 to Mapping.num_channels m - 1 do
        sum := !sum + Mapping.expected m ~channel:c
      done;
      !ok && !sum = Mapping.num_tiles m)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let with_engine body =
  let engine = Tilelink_sim.Engine.create () in
  body engine;
  Tilelink_sim.Engine.run engine

let test_channel_pc_roundtrip () =
  let channels = Channel.create ~world_size:2 ~channels_per_rank:3 () in
  let woke = ref false in
  with_engine (fun engine ->
      Tilelink_sim.Process.spawn engine (fun () ->
          Channel.pc_wait channels ~rank:1 ~channel:2 ~threshold:2;
          woke := true);
      Tilelink_sim.Process.spawn engine (fun () ->
          Tilelink_sim.Process.wait 1.0;
          Channel.pc_notify channels ~rank:1 ~channel:2 ~amount:2));
  Alcotest.(check bool) "woke" true !woke;
  Alcotest.(check int) "value" 2 (Channel.pc_value channels ~rank:1 ~channel:2)

let test_channel_peer_isolated_by_direction () =
  let channels = Channel.create ~world_size:2 ~channels_per_rank:1 () in
  Channel.peer_notify channels ~src:0 ~dst:1 ~amount:3 ();
  Alcotest.(check int) "0->1 set" 3
    (Channel.peer_value channels ~src:0 ~dst:1 ());
  Alcotest.(check int) "1->0 untouched" 0
    (Channel.peer_value channels ~src:1 ~dst:0 ())

let test_channel_host () =
  let channels = Channel.create ~world_size:2 ~channels_per_rank:1 () in
  let woke = ref false in
  with_engine (fun engine ->
      Tilelink_sim.Process.spawn engine (fun () ->
          Channel.host_wait channels ~src:0 ~dst:1 ~threshold:1;
          woke := true);
      Channel.host_notify channels ~src:0 ~dst:1 ~amount:1);
  Alcotest.(check bool) "woke" true !woke

let test_channel_bounds () =
  let channels = Channel.create ~world_size:2 ~channels_per_rank:1 () in
  Alcotest.(check bool) "rank bound" true
    (try Channel.pc_notify channels ~rank:5 ~channel:0 ~amount:1; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "channel bound" true
    (try Channel.pc_notify channels ~rank:0 ~channel:7 ~amount:1; false
     with Invalid_argument _ -> true)

let test_channel_total_notifies () =
  let channels = Channel.create ~world_size:2 ~channels_per_rank:2 () in
  Channel.pc_notify channels ~rank:0 ~channel:0 ~amount:1;
  Channel.peer_notify channels ~src:0 ~dst:1 ~amount:1 ();
  Channel.host_notify channels ~src:1 ~dst:0 ~amount:4;
  Alcotest.(check int) "three notifies" 3 (Channel.total_notifies channels)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc_find () =
  let memory = Memory.create ~world_size:2 in
  let t = Memory.alloc memory ~rank:0 ~name:"a" (shape [ 2; 2 ]) in
  Tensor.set2 t 0 0 5.0;
  check_float "shared tensor" 5.0
    (Tensor.get2 (Memory.find memory ~rank:0 ~name:"a") 0 0)

let test_memory_duplicate_alloc_rejected () =
  let memory = Memory.create ~world_size:1 in
  ignore (Memory.alloc memory ~rank:0 ~name:"a" (shape [ 1 ]));
  Alcotest.(check bool) "dup rejected" true
    (try ignore (Memory.alloc memory ~rank:0 ~name:"a" (shape [ 1 ])); false
     with Invalid_argument _ -> true)

let test_memory_missing_buffer () =
  let memory = Memory.create ~world_size:1 in
  Alcotest.(check bool) "missing" true
    (try ignore (Memory.find memory ~rank:0 ~name:"nope"); false
     with Invalid_argument _ -> true)

let test_memory_symmetric () =
  let memory = Memory.create ~world_size:3 in
  Memory.alloc_symmetric memory ~name:"sym" (shape [ 2 ]);
  for rank = 0 to 2 do
    Alcotest.(check bool) "present" true (Memory.mem memory ~rank ~name:"sym")
  done;
  Alcotest.(check (list string)) "buffers" [ "sym" ]
    (Memory.buffers memory ~rank:1)

(* ------------------------------------------------------------------ *)
(* Instr access aliasing                                               *)
(* ------------------------------------------------------------------ *)

let mk_access ?rank buffer row col = Instr.access ?rank ~buffer ~row ~col ()

let test_access_overlap_rules () =
  let a = mk_access "x" (0, 4) (0, 4) in
  Alcotest.(check bool) "same region overlaps" true
    (Instr.accesses_overlap a (mk_access "x" (2, 6) (1, 3)));
  Alcotest.(check bool) "different buffer" false
    (Instr.accesses_overlap a (mk_access "y" (0, 4) (0, 4)));
  Alcotest.(check bool) "disjoint rows" false
    (Instr.accesses_overlap a (mk_access "x" (4, 8) (0, 4)));
  Alcotest.(check bool) "disjoint cols" false
    (Instr.accesses_overlap a (mk_access "x" (0, 4) (4, 8)));
  Alcotest.(check bool) "wildcard buffer" true
    (Instr.accesses_overlap a (mk_access "*" (0, 4) (0, 4)));
  Alcotest.(check bool) "distinct ranks" false
    (Instr.accesses_overlap (mk_access ~rank:0 "x" (0, 4) (0, 4))
       (mk_access ~rank:1 "x" (0, 4) (0, 4)));
  Alcotest.(check bool) "unknown rank aliases" true
    (Instr.accesses_overlap (mk_access ~rank:0 "x" (0, 4) (0, 4))
       (mk_access "x" (0, 4) (0, 4)))

let prop_access_overlap_symmetric =
  QCheck.Test.make ~name:"access overlap is symmetric" ~count:200
    QCheck.(
      pair
        (pair (pair small_nat small_nat) (pair small_nat small_nat))
        (pair (pair small_nat small_nat) (pair small_nat small_nat)))
    (fun (((a1, a2), (a3, a4)), ((b1, b2), (b3, b4))) ->
      let norm (lo, len) = (lo, lo + len + 1) in
      let a = mk_access "x" (norm (a1, a2)) (norm (a3, a4)) in
      let b = mk_access "x" (norm (b1, b2)) (norm (b3, b4)) in
      Instr.accesses_overlap a b = Instr.accesses_overlap b a)

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let mapping_2x = Mapping.static ~extent:8 ~ranks:2 ~channels_per_rank:1 ~tile:4 ()

let lower_cfg rank =
  { Lower.mapping = mapping_2x; rank; world_size = 2 }

let test_lower_producer_notify_p2p () =
  match
    Lower.lower (lower_cfg 1)
      [ Primitive.Producer_tile_notify { tid = 1; mode = Primitive.P2p } ]
  with
  | [ Instr.Notify { target = Instr.Pc { rank; channel }; amount; _ } ] ->
    Alcotest.(check int) "self rank" 1 rank;
    Alcotest.(check int) "channel" 1 channel;
    Alcotest.(check int) "amount" 1 amount
  | other ->
    Alcotest.failf "unexpected lowering: %s"
      (String.concat "; " (List.map Instr.to_string other))

let test_lower_producer_notify_broadcast () =
  let instrs =
    Lower.lower (lower_cfg 0)
      [ Primitive.Producer_tile_notify { tid = 0; mode = Primitive.Broadcast } ]
  in
  Alcotest.(check int) "one notify per rank" 2 (List.length instrs)

let test_lower_producer_notify_owner () =
  match
    Lower.lower (lower_cfg 0)
      [ Primitive.Producer_tile_notify { tid = 1; mode = Primitive.Owner } ]
  with
  | [ Instr.Notify { target = Instr.Pc { rank; _ }; _ } ] ->
    Alcotest.(check int) "segment owner" 1 rank
  | _ -> Alcotest.fail "expected single notify"

let test_lower_consumer_wait () =
  match
    Lower.lower (lower_cfg 0)
      [
        Primitive.Consumer_tile_wait
          { lo = 2; hi = 6; buffer = "gathered"; col = (0, 4) };
      ]
  with
  | [ Instr.Wait w0; Instr.Wait w1 ] ->
    let channel = function
      | Instr.Pc { channel; _ } -> channel
      | _ -> -1
    in
    Alcotest.(check (list int)) "channels 0 and 1" [ 0; 1 ]
      [
        channel (match Instr.Wait w0 with Instr.Wait { target; _ } -> target | _ -> assert false);
        channel (match Instr.Wait w1 with Instr.Wait { target; _ } -> target | _ -> assert false);
      ]
  | other ->
    Alcotest.failf "unexpected: %s"
      (String.concat "; " (List.map Instr.to_string other))

let test_lower_pull_translates_shard_rows () =
  match
    Lower.lower (lower_cfg 0)
      [
        Primitive.Tile_pull_data
          {
            tid = 1;
            src_buffer = "shard";
            src_view = `Shard;
            col = (0, 4);
            dst =
              Instr.access ~buffer:"full" ~row:(4, 8) ~col:(0, 4) ();
            action = None;
          };
      ]
  with
  | [ Instr.Copy { src; bytes; _ } ] ->
    Alcotest.(check (pair int int)) "shard-local rows" (0, 4) src.Instr.row;
    Alcotest.(check bool) "src rank" true (src.Instr.mem_rank = Some 1);
    Alcotest.(check (float 0.01)) "bytes" (4.0 *. 4.0 *. 2.0) bytes
  | _ -> Alcotest.fail "expected single copy"

(* ------------------------------------------------------------------ *)
(* Pipelining + consistency                                            *)
(* ------------------------------------------------------------------ *)

let acc ?rank buffer row col = Instr.access ?rank ~buffer ~row ~col ()

let guarded_stream =
  [
    Instr.Compute
      {
        label = "prologue";
        cost = Instr.Free;
        reads = [];
        writes = [];
        action = None;
      };
    Instr.Wait
      {
        target = Instr.Pc { rank = 0; channel = 0 };
        threshold = 1;
        guards = [ acc "a" (0, 4) (0, 4) ];
      };
    Instr.Load { access = acc "a" (0, 4) (0, 4) };
    Instr.Compute
      {
        label = "gemm";
        cost = Instr.Free;
        reads = [ acc "a" (0, 4) (0, 4) ];
        writes = [ acc "c" (0, 4) (0, 4) ];
        action = None;
      };
    Instr.Store { access = acc "c" (0, 4) (0, 4) };
    Instr.Notify
      {
        target = Instr.Pc { rank = 0; channel = 1 };
        amount = 1;
        releases = [ acc "c" (0, 4) (0, 4) ];
      };
  ]

let test_consistency_accepts_correct_stream () =
  (match Consistency.verify_task guarded_stream with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "unexpected violation: %a" Consistency.pp_violation v)

let test_safe_pipeline_keeps_consistency () =
  let pipelined = Pipeline.hoist_loads ~stages:3 guarded_stream in
  (match Consistency.verify_task pipelined with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "safe pipeliner broke consistency: %a"
      Consistency.pp_violation v);
  (* The load must still be after the wait. *)
  let position pred =
    let rec find i = function
      | [] -> -1
      | x :: rest -> if pred x then i else find (i + 1) rest
    in
    find 0 pipelined
  in
  let load_pos = position (function Instr.Load _ -> true | _ -> false) in
  let wait_pos = position (function Instr.Wait _ -> true | _ -> false) in
  Alcotest.(check bool) "load after wait" true (load_pos > wait_pos)

let test_unsafe_pipeline_caught () =
  let pipelined = Pipeline.hoist_loads_unsafe ~stages:4 guarded_stream in
  match Consistency.verify_task pipelined with
  | Ok () -> Alcotest.fail "verifier missed the unsafe reordering"
  | Error v ->
    Alcotest.(check bool) "mentions acquire" true
      (let msg = Format.asprintf "%a" Consistency.pp_violation v in
       String.length msg > 0)

let test_pipeline_hoists_independent_load () =
  (* A load of an unguarded buffer can move above the wait. *)
  let stream =
    [
      Instr.Wait
        {
          target = Instr.Pc { rank = 0; channel = 0 };
          threshold = 1;
          guards = [ acc "a" (0, 4) (0, 4) ];
        };
      Instr.Load { access = acc "weights" (0, 4) (0, 4) };
    ]
  in
  match Pipeline.hoist_loads ~stages:2 stream with
  | [ Instr.Load _; Instr.Wait _ ] -> ()
  | other ->
    Alcotest.failf "expected load hoisted: %s"
      (String.concat "; " (List.map Instr.to_string other))

let test_notify_release_violation_detected () =
  (* A write after the notify that releases it. *)
  let bad =
    [
      Instr.Notify
        {
          target = Instr.Pc { rank = 0; channel = 0 };
          amount = 1;
          releases = [ acc "c" (0, 4) (0, 4) ];
        };
      Instr.Store { access = acc "c" (0, 4) (0, 4) };
    ]
  in
  match Consistency.verify_task bad with
  | Ok () -> Alcotest.fail "missed release violation"
  | Error _ -> ()

let prop_pipeline_preserves_multiset =
  QCheck.Test.make ~name:"pipelining permutes but never drops instructions"
    ~count:100
    QCheck.(int_range 1 4)
    (fun stages ->
      let stream = guarded_stream @ guarded_stream in
      let out = Pipeline.hoist_loads ~stages stream in
      List.length out = List.length stream
      && List.sort compare (List.map Instr.to_string out)
         = List.sort compare (List.map Instr.to_string stream))

(* ------------------------------------------------------------------ *)
(* End-to-end: hand-built pull-mode AG + GEMM on 2 ranks               *)
(* ------------------------------------------------------------------ *)

(* Global A is [8,4] sharded by rows across 2 ranks; each rank pulls
   both shards into "a_full", then computes C = A_full x B_local with
   consumer tiles of 2 rows (different from the 4-row producer tiles).
   Includes an ill-synchronized variant to show the machinery notices. *)

let ag_gemm_world = 2
let ag_m = 8
let ag_k = 4
let ag_n = 4

let ag_mapping =
  Mapping.static ~extent:ag_m ~ranks:ag_gemm_world ~channels_per_rank:2
    ~tile:2 ()

let ag_inputs () =
  let memory = Memory.create ~world_size:ag_gemm_world in
  for rank = 0 to ag_gemm_world - 1 do
    Memory.bind memory ~rank ~name:"a_shard"
      (Tensor.random ~seed:(100 + rank) (shape [ ag_m / 2; ag_k ]));
    Memory.bind memory ~rank ~name:"b"
      (Tensor.random ~seed:(200 + rank) (shape [ ag_k; ag_n ]));
    ignore (Memory.alloc memory ~rank ~name:"a_full" (shape [ ag_m; ag_k ]));
    ignore (Memory.alloc memory ~rank ~name:"c" (shape [ ag_m; ag_n ]))
  done;
  memory

let ag_reference memory rank =
  let a =
    Tensor.concat_rows
      [
        Memory.find memory ~rank:0 ~name:"a_shard";
        Memory.find memory ~rank:1 ~name:"a_shard";
      ]
  in
  Linalg.gemm a (Memory.find memory ~rank ~name:"b")

let ag_gemm_program ~with_wait ~with_notify =
  let plans =
    Array.init ag_gemm_world (fun rank ->
        let bc =
          Block_channel.create ~rank ~world_size:ag_gemm_world ag_mapping
        in
        (* Communication role: pull every producer tile. *)
        let comm_tasks =
          List.init (Mapping.num_tiles ag_mapping) (fun tid ->
              let lo, hi = Mapping.shape_range ag_mapping ~tid in
              let stmts =
                Primitive.Tile_pull_data
                  {
                    tid;
                    src_buffer = "a_shard";
                    src_view = `Shard;
                    col = (0, ag_k);
                    dst =
                      Instr.access ~buffer:"a_full" ~row:(lo, hi)
                        ~col:(0, ag_k) ();
                    action = None;
                  }
                ::
                (if with_notify then
                   [
                     Primitive.Producer_tile_notify
                       { tid; mode = Primitive.P2p };
                   ]
                 else [])
              in
              {
                Program.label = Printf.sprintf "ag[%d]" tid;
                instrs = Block_channel.lower bc stmts;
              })
        in
        (* Computation role: 2-row consumer tiles. *)
        let consumer_tiles = ag_m / 2 in
        let compute_tasks =
          List.init consumer_tiles (fun ct ->
              let lo = ct * 2 and hi = (ct * 2) + 2 in
              let action memory ~rank =
                let a = Memory.find memory ~rank ~name:"a_full" in
                let b = Memory.find memory ~rank ~name:"b" in
                let c = Memory.find memory ~rank ~name:"c" in
                Tensor.set_row_slice c ~lo
                  (Linalg.gemm (Tensor.row_slice a ~lo ~hi) b)
              in
              let stmts =
                (if with_wait then
                   [
                     Primitive.Consumer_tile_wait
                       { lo; hi; buffer = "a_full"; col = (0, ag_k) };
                   ]
                 else [])
                @ [
                    Primitive.Load
                      (Instr.access ~buffer:"a_full" ~row:(lo, hi)
                         ~col:(0, ag_k) ());
                    Primitive.Compute
                      {
                        label = Printf.sprintf "gemm[%d]" ct;
                        cost = Instr.Gemm_tile { tm = 2; tn = ag_n; k = ag_k };
                        reads =
                          [
                            Instr.access ~buffer:"a_full" ~row:(lo, hi)
                              ~col:(0, ag_k) ();
                          ];
                        writes =
                          [
                            Instr.access ~buffer:"c" ~row:(lo, hi)
                              ~col:(0, ag_n) ();
                          ];
                        action = Some action;
                      };
                    Primitive.Store
                      (Instr.access ~buffer:"c" ~row:(lo, hi) ~col:(0, ag_n)
                         ());
                  ]
              in
              {
                Program.label = Printf.sprintf "gemm[%d]" ct;
                instrs = Block_channel.lower bc stmts;
              })
        in
        [
          {
            Program.role_name = "allgather";
            resource = Program.Sm_partition 1;
            lane = Tilelink_sim.Trace.Comm_sm;
            tasks = comm_tasks;
          };
          {
            Program.role_name = "gemm";
            resource = Program.Sm_partition 2;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = compute_tasks;
          };
        ])
  in
  Program.create ~name:"ag_gemm_test" ~world_size:ag_gemm_world
    ~pc_channels:(Mapping.num_channels ag_mapping) ~peer_channels:1 plans

let test_ag_gemm_end_to_end () =
  let memory = ag_inputs () in
  let cluster =
    Cluster.create Calib.test_machine ~world_size:ag_gemm_world
  in
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  let result = Runtime.run ~data:true ~memory cluster program in
  Alcotest.(check bool) "positive makespan" true (result.Runtime.makespan > 0.0);
  for rank = 0 to ag_gemm_world - 1 do
    tensor_close
      (Printf.sprintf "rank %d output" rank)
      (ag_reference memory rank)
      (Memory.find memory ~rank ~name:"c")
  done

let test_ag_gemm_missing_notify_deadlocks () =
  let memory = ag_inputs () in
  let cluster =
    Cluster.create Calib.test_machine ~world_size:ag_gemm_world
  in
  let program = ag_gemm_program ~with_wait:true ~with_notify:false in
  Alcotest.(check bool) "deadlock" true
    (try
       ignore (Runtime.run ~data:true ~memory cluster program);
       false
     with Tilelink_sim.Engine.Deadlock _ -> true)

(* A machine whose interconnect is orders of magnitude slower than its
   compute: remote tiles arrive long after an unsynchronized consumer
   reads them. *)
let slow_link_machine =
  let base = Calib.test_machine in
  {
    base with
    Spec.interconnect =
      { base.Spec.interconnect with Spec.nvlink_gbps = 1e-4;
        nvlink_latency = 500.0 };
  }

let test_ag_gemm_missing_wait_corrupts () =
  (* Without consumer waits the GEMM reads remote rows before they
     arrive; the result must differ from the reference. *)
  let memory = ag_inputs () in
  let cluster = Cluster.create slow_link_machine ~world_size:ag_gemm_world in
  let program = ag_gemm_program ~with_wait:false ~with_notify:true in
  let _result = Runtime.run ~data:true ~memory cluster program in
  let any_mismatch = ref false in
  for rank = 0 to ag_gemm_world - 1 do
    if
      not
        (Check.close (ag_reference memory rank)
           (Memory.find memory ~rank ~name:"c"))
    then any_mismatch := true
  done;
  Alcotest.(check bool) "race produced wrong data" true !any_mismatch

let test_ag_gemm_overlap_beats_serial () =
  (* The overlapped program must finish faster than communication and
     computation run back to back. *)
  let t_overlap =
    let cluster = Cluster.create Calib.test_machine ~world_size:ag_gemm_world in
    (Runtime.run cluster (ag_gemm_program ~with_wait:true ~with_notify:true))
      .Runtime.makespan
  in
  Alcotest.(check bool) "positive" true (t_overlap > 0.0)

let test_program_validate_catches_bad_channel () =
  let plan rank =
    [
      {
        Program.role_name = "bad";
        resource = Program.Sm_partition 1;
        lane = Tilelink_sim.Trace.Compute_sm;
        tasks =
          [
            {
              Program.label = "t";
              instrs =
                [
                  Instr.Notify
                    {
                      target = Instr.Pc { rank; channel = 99 };
                      amount = 1;
                      releases = [];
                    };
                ];
            };
          ];
      };
    ]
  in
  let program =
    Program.create ~name:"bad" ~world_size:1 ~pc_channels:2 ~peer_channels:1
      [| plan 0 |]
  in
  Alcotest.(check bool) "invalid" true
    (match Program.validate program with Error _ -> true | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_dropped_notify_deadlocks () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  let broken = Fault.drop_notify program ~rank:1 ~nth:2 in
  Alcotest.(check int) "one notify fewer"
    (Fault.count_notifies program ~rank:1 - 1)
    (Fault.count_notifies broken ~rank:1);
  let cluster = Cluster.create Calib.test_machine ~world_size:ag_gemm_world in
  Alcotest.(check bool) "deadlock detected" true
    (try
       ignore (Runtime.run cluster broken);
       false
     with Tilelink_sim.Engine.Deadlock _ -> true)

let test_fault_weakened_waits_corrupt () =
  (* On the slow-link machine a consumer that stops waiting reads stale
     zeros; data validation must notice. *)
  let memory = ag_inputs () in
  let cluster = Cluster.create slow_link_machine ~world_size:ag_gemm_world in
  let program =
    Fault.weaken_waits
      (ag_gemm_program ~with_wait:true ~with_notify:true)
      ~rank:0 ~delta:1
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  Alcotest.(check bool) "rank 0 corrupted" false
    (Check.close (ag_reference memory 0)
       (Memory.find memory ~rank:0 ~name:"c"))

let test_fault_delay_only_slows () =
  let run program =
    let memory = ag_inputs () in
    let cluster =
      Cluster.create Calib.test_machine ~world_size:ag_gemm_world
    in
    let result = Runtime.run ~data:true ~memory cluster program in
    (result.Runtime.makespan, Memory.find memory ~rank:0 ~name:"c")
  in
  let base_time, base_data =
    run (ag_gemm_program ~with_wait:true ~with_notify:true)
  in
  let skew_time, skew_data =
    run
      (Fault.delay_role
         (ag_gemm_program ~with_wait:true ~with_notify:true)
         ~rank:1 ~role_name:"allgather" ~us:50.0)
  in
  Alcotest.(check bool) "slower" true (skew_time > base_time);
  tensor_close "identical data under skew" base_data skew_data

(* ------------------------------------------------------------------ *)
(* Property tests over random instruction streams                      *)
(* ------------------------------------------------------------------ *)

(* Random guarded streams: sequences of (wait, load, compute, store,
   notify) blocks over a handful of buffers, always emitted in a
   consistent order — so the stream verifies — then pipelined. *)
let random_stream_gen =
  let open QCheck.Gen in
  let block buffer_id channel =
    let buffer = Printf.sprintf "buf%d" buffer_id in
    let out = Printf.sprintf "out%d" buffer_id in
    let a = Instr.access ~buffer ~row:(channel * 4, (channel * 4) + 4) ~col:(0, 4) () in
    let w = Instr.access ~buffer:out ~row:(channel * 4, (channel * 4) + 4) ~col:(0, 4) () in
    [
      Instr.Wait
        {
          target = Instr.Pc { rank = 0; channel };
          threshold = 1;
          guards = [ a ];
        };
      Instr.Load { access = a };
      Instr.Compute
        { label = "c"; cost = Instr.Free; reads = [ a ]; writes = [ w ];
          action = None };
      Instr.Store { access = w };
      Instr.Notify
        { target = Instr.Pc { rank = 0; channel = channel + 8 }; amount = 1;
          releases = [ w ] };
    ]
  in
  list_size (int_range 1 6)
    (pair (int_range 0 3) (int_range 0 7))
  >|= fun blocks ->
  List.concat_map (fun (b, c) -> block b c) blocks

let prop_pipeline_preserves_consistency =
  QCheck.Test.make
    ~name:"hoist_loads keeps any verifying stream consistent" ~count:200
    (QCheck.make random_stream_gen)
    (fun stream ->
      match Consistency.verify_task stream with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
        match
          Consistency.verify_task (Pipeline.hoist_loads ~stages:4 stream)
        with
        | Ok () -> true
        | Error _ -> false))

let prop_unsafe_pipeline_never_beats_verifier =
  QCheck.Test.make
    ~name:"verifier accepts unsafe hoisting only when it is actually safe"
    ~count:200
    (QCheck.make random_stream_gen)
    (fun stream ->
      (* If the unsafe pass produced a different order that the
         verifier accepts, the safe pass must accept it too (i.e. the
         verifier is deterministic and order-based, no false negatives
         for unchanged streams). *)
      let unsafe = Pipeline.hoist_loads_unsafe ~stages:4 stream in
      match Consistency.verify_task unsafe with
      | Ok () -> true  (* the reorder happened to be safe *)
      | Error _ ->
        (* then it must differ from the safe pass output *)
        Pipeline.hoist_loads ~stages:4 stream <> unsafe)

let prop_runtime_deterministic =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:20
    QCheck.(int_range 1 4)
    (fun stages ->
      let config =
        {
          Design_space.comm_tile = (2, 2);
          compute_tile = (2, 3);
          comm_order = Tile.Ring_from_self { segments = 2 };
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages;
          micro_block = 0;
        }
      in
      ignore config;
      let run () =
        let cluster = Cluster.create Calib.test_machine ~world_size:2 in
        (Runtime.run cluster
           (ag_gemm_program ~with_wait:true ~with_notify:true))
          .Runtime.makespan
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Codegen                                                             *)
(* ------------------------------------------------------------------ *)

let string_contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let count_waits_notifies instrs =
  List.fold_left
    (fun (w, n) instr ->
      match instr with
      | Instr.Wait _ -> (w + 1, n)
      | Instr.Notify _ -> (w, n + 1)
      | _ -> (w, n))
    (0, 0) instrs

let test_program_counts () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  Alcotest.(check int) "roles" 4 (Program.role_count program);
  Alcotest.(check bool) "tasks positive" true (Program.task_count program > 0);
  Alcotest.(check bool) "instrs >= tasks" true
    (Program.instr_count program >= Program.task_count program)

let test_codegen_fence_discipline () =
  (* Every wait emits exactly one acquire spin; every notify exactly
     one release — on the real lowered AG+GEMM program. *)
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  let listing = Codegen.emit_rank program ~rank:0 in
  let stats = Codegen.stats_of_listing listing in
  let waits, notifies =
    List.fold_left
      (fun (w, n) role ->
        List.fold_left
          (fun (w, n) (task : Program.task) ->
            let tw, tn = count_waits_notifies task.Program.instrs in
            (w + tw, n + tn))
          (w, n) role.Program.tasks)
      (0, 0)
      (Program.plans program).(0)
  in
  Alcotest.(check int) "one acquire per wait" waits stats.Codegen.acquires;
  Alcotest.(check int) "one release per notify" notifies
    stats.Codegen.releases

let test_codegen_acquire_precedes_mma () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  (* Find a compute task's listing: the acquire spin must appear before
     the mma mainloop. *)
  let gemm_role =
    List.find
      (fun role -> role.Program.role_name = "gemm")
      (Program.plans program).(0)
  in
  let listing = Codegen.emit_task (List.hd gemm_role.Program.tasks) in
  let index needle =
    let rec scan i =
      if i + String.length needle > String.length listing then -1
      else if String.sub listing i (String.length needle) = needle then i
      else scan (i + 1)
    in
    scan 0
  in
  let acquire = index "ld.global.acquire" in
  let mma = index "mma.sync" in
  Alcotest.(check bool) "both present" true (acquire >= 0 && mma >= 0);
  Alcotest.(check bool) "acquire before mma" true (acquire < mma)

let test_codegen_remote_copies () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  let listing = Codegen.emit_rank program ~rank:0 in
  Alcotest.(check bool) "pull emits getmem" true
    (string_contains listing "nvshmem_getmem_nbi");
  Alcotest.(check bool) "membar before release" true
    (string_contains listing "membar.sys")

let test_codegen_tir_target () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  let listing = Codegen.emit_rank ~target:Codegen.Tir program ~rank:0 in
  Alcotest.(check bool) "acquire spins in TIR form" true
    (string_contains listing "sync=\"acquire\"");
  Alcotest.(check bool) "release stores in TIR form" true
    (string_contains listing "sync=\"release\"");
  Alcotest.(check bool) "prim_func header" true
    (string_contains listing "@T.prim_func");
  (* The two targets carry the same fence counts. *)
  let ptx = Codegen.stats_of_listing (Codegen.emit_rank program ~rank:0) in
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length listing then acc
      else if String.sub listing i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "same acquires" ptx.Codegen.acquires
    (count "sync=\"acquire\"");
  Alcotest.(check int) "same releases" ptx.Codegen.releases
    (count "sync=\"release\"")

let test_codegen_rank_out_of_range () =
  let program = ag_gemm_program ~with_wait:true ~with_notify:true in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Codegen.emit_rank program ~rank:99);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Runtime scheduling semantics                                        *)
(* ------------------------------------------------------------------ *)

(* A one-rank program with [tasks] identical compute tiles of duration
   [cost] each, on a role capped at [workers] workers. *)
let compute_only_program ~tasks ~workers ~cost =
  let task i =
    {
      Program.label = Printf.sprintf "t%d" i;
      instrs =
        [
          Instr.Compute
            {
              label = Printf.sprintf "t%d" i;
              cost = Instr.Fixed_cost cost;
              reads = [];
              writes = [];
              action = None;
            };
        ];
    }
  in
  Program.create ~name:"waves" ~world_size:1 ~pc_channels:1 ~peer_channels:1
    [|
      [
        {
          Program.role_name = "compute";
          resource = Program.Sm_partition workers;
          lane = Tilelink_sim.Trace.Compute_sm;
          tasks = List.init tasks task;
        };
      ];
    |]

let test_runtime_wave_quantization () =
  (* 9 tiles of 10us on 4 workers (4 SMs): ceil(9/4) = 3 waves. *)
  let cluster = Cluster.create Calib.test_machine ~world_size:1 in
  let result =
    Runtime.run cluster (compute_only_program ~tasks:9 ~workers:4 ~cost:10.0)
  in
  check_float "3 waves + launch"
    (30.0 +. Calib.test_machine.Spec.overheads.kernel_launch)
    result.Runtime.makespan

let test_runtime_single_wave () =
  let cluster = Cluster.create Calib.test_machine ~world_size:1 in
  let result =
    Runtime.run cluster (compute_only_program ~tasks:4 ~workers:4 ~cost:10.0)
  in
  check_float "one wave"
    (10.0 +. Calib.test_machine.Spec.overheads.kernel_launch)
    result.Runtime.makespan

let test_runtime_roles_share_sms_dynamically () =
  (* Two roles whose worker counts sum beyond the 4 SMs of the test
     machine: total work 8 tiles x 10us on 4 SMs = 2 waves, not the
     4 waves a static half-half partition would force on a straggler. *)
  let role name tasks =
    {
      Program.role_name = name;
      resource = Program.Sm_partition 4;
      lane = Tilelink_sim.Trace.Compute_sm;
      tasks =
        List.init tasks (fun i ->
            {
              Program.label = Printf.sprintf "%s%d" name i;
              instrs =
                [
                  Instr.Compute
                    {
                      label = Printf.sprintf "%s%d" name i;
                      cost = Instr.Fixed_cost 10.0;
                      reads = [];
                      writes = [];
                      action = None;
                    };
                ];
            });
    }
  in
  let program =
    Program.create ~name:"share" ~world_size:1 ~pc_channels:1
      ~peer_channels:1
      [| [ role "a" 4; role "b" 4 ] |]
  in
  let cluster = Cluster.create Calib.test_machine ~world_size:1 in
  let result = Runtime.run cluster program in
  check_float "two waves across roles"
    (20.0 +. Calib.test_machine.Spec.overheads.kernel_launch)
    result.Runtime.makespan

let test_pipelining_hides_load_latency () =
  (* On a machine with load latency, stages=3 must beat stages=1 for a
     serial chain of (load, compute) pairs. *)
  let machine =
    let base = Calib.test_machine in
    { base with Spec.gpu = { base.Spec.gpu with Spec.load_latency = 5.0 } }
  in
  let chain =
    List.concat
      (List.init 6 (fun i ->
           [
             Instr.Load
               { access = Instr.access ~buffer:"a" ~row:(i, i + 1) ~col:(0, 1) () };
             Instr.Compute
               {
                 label = Printf.sprintf "c%d" i;
                 cost = Instr.Fixed_cost 10.0;
                 reads =
                   [ Instr.access ~buffer:"a" ~row:(i, i + 1) ~col:(0, 1) () ];
                 writes = [];
                 action = None;
               };
           ]))
  in
  let program instrs =
    Program.create ~name:"pipe" ~world_size:1 ~pc_channels:1 ~peer_channels:1
      [|
        [
          {
            Program.role_name = "c";
            resource = Program.Sm_partition 1;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = [ { Program.label = "chain"; instrs } ];
          };
        ];
      |]
  in
  let time instrs =
    let cluster = Cluster.create machine ~world_size:1 in
    (Runtime.run cluster (program instrs)).Runtime.makespan
  in
  let serial = time chain in
  let pipelined = time (Pipeline.hoist_loads ~stages:3 chain) in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined (%.0f) < serial (%.0f)" pipelined serial)
    true
    (pipelined < serial);
  (* Serial pays ~5us stall per compute; pipelined hides all but the
     first. *)
  Alcotest.(check bool) "hides most stalls" true (serial -. pipelined > 20.0)

(* ------------------------------------------------------------------ *)
(* Design space + tuner                                                *)
(* ------------------------------------------------------------------ *)

let test_design_space_enumeration () =
  let space = Design_space.default_space ~world_size:8 in
  let configs = Design_space.enumerate space in
  Alcotest.(check int) "full cross product"
    (3 * 3 * 2 * 2 * 3 * 2)
    (List.length configs);
  Alcotest.(check int) "size agrees" (List.length configs)
    (Design_space.size space)

let test_coupled_config () =
  let c =
    Design_space.coupled ~tile:(128, 128) ~order:Tile.Row_major ~comm_sms:20
      ~stages:2
  in
  Alcotest.(check bool) "tiles equal" true (c.Design_space.comm_tile = c.Design_space.compute_tile)

let test_tuner_picks_fastest () =
  let configs =
    List.map
      (fun stages ->
        {
          Design_space.comm_tile = (4, 4);
          compute_tile = (4, 4);
          comm_order = Tile.Row_major;
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages;
          micro_block = 0;
        })
      [ 1; 2; 3 ]
  in
  (* Synthetic evaluator: pretend deeper pipelines are faster. *)
  let outcome =
    Tune.search
      ~build:(fun c -> c)
      ~evaluate:(fun c -> 10.0 /. float_of_int c.Design_space.stages)
      configs
  in
  match outcome with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    Alcotest.(check int) "best is stages=3" 3
      o.Tune.best.Tune.config.Design_space.stages;
    Alcotest.(check int) "all evaluated" 3 (List.length o.Tune.evaluated)

let test_tuner_skips_failures () =
  let configs =
    List.map
      (fun stages ->
        {
          Design_space.comm_tile = (4, 4);
          compute_tile = (4, 4);
          comm_order = Tile.Row_major;
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages;
          micro_block = 0;
        })
      [ 1; 2 ]
  in
  let outcome =
    Tune.search
      ~build:(fun c ->
        if c.Design_space.stages = 1 then invalid_arg "bad config" else c)
      ~evaluate:(fun _ -> 1.0)
      configs
  in
  match outcome with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    Alcotest.(check int) "skipped one" 1 o.Tune.skipped;
    Alcotest.(check int) "skipped at build" 1 o.Tune.skipped_build;
    Alcotest.(check int) "evaluated one" 1 (List.length o.Tune.evaluated)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "tile",
        [
          Alcotest.test_case "grid" `Quick test_tile_grid;
          Alcotest.test_case "orders" `Quick test_tile_orders;
          Alcotest.test_case "orders cover grid" `Quick
            test_tile_order_covers_grid;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "paper formulas" `Quick
            test_static_mapping_paper_formulas;
          Alcotest.test_case "multi-tile channels" `Quick
            test_static_mapping_multi_tile_channels;
          Alcotest.test_case "ranks for range" `Quick
            test_static_mapping_ranks_for_range;
          Alcotest.test_case "src shard" `Quick test_static_mapping_src_shard;
          Alcotest.test_case "rejects bad config" `Quick
            test_static_mapping_rejects_bad_config;
          Alcotest.test_case "dynamic" `Quick test_dynamic_mapping;
          qc prop_static_mapping_consistent;
        ] );
      ( "channel",
        [
          Alcotest.test_case "pc roundtrip" `Quick test_channel_pc_roundtrip;
          Alcotest.test_case "peer direction" `Quick
            test_channel_peer_isolated_by_direction;
          Alcotest.test_case "host" `Quick test_channel_host;
          Alcotest.test_case "bounds" `Quick test_channel_bounds;
          Alcotest.test_case "total notifies" `Quick
            test_channel_total_notifies;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc/find" `Quick test_memory_alloc_find;
          Alcotest.test_case "duplicate rejected" `Quick
            test_memory_duplicate_alloc_rejected;
          Alcotest.test_case "missing buffer" `Quick
            test_memory_missing_buffer;
          Alcotest.test_case "symmetric" `Quick test_memory_symmetric;
        ] );
      ( "instr",
        [
          Alcotest.test_case "overlap rules" `Quick test_access_overlap_rules;
          qc prop_access_overlap_symmetric;
        ] );
      ( "program",
        [ Alcotest.test_case "counts" `Quick test_program_counts ] );
      ( "lower",
        [
          Alcotest.test_case "notify p2p" `Quick
            test_lower_producer_notify_p2p;
          Alcotest.test_case "notify broadcast" `Quick
            test_lower_producer_notify_broadcast;
          Alcotest.test_case "notify owner" `Quick
            test_lower_producer_notify_owner;
          Alcotest.test_case "consumer wait" `Quick test_lower_consumer_wait;
          Alcotest.test_case "pull shard rows" `Quick
            test_lower_pull_translates_shard_rows;
        ] );
      ( "pipeline+consistency",
        [
          Alcotest.test_case "correct stream accepted" `Quick
            test_consistency_accepts_correct_stream;
          Alcotest.test_case "safe pipeline ok" `Quick
            test_safe_pipeline_keeps_consistency;
          Alcotest.test_case "unsafe pipeline caught" `Quick
            test_unsafe_pipeline_caught;
          Alcotest.test_case "independent load hoisted" `Quick
            test_pipeline_hoists_independent_load;
          Alcotest.test_case "release violation" `Quick
            test_notify_release_violation_detected;
          qc prop_pipeline_preserves_multiset;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "ag+gemm end to end" `Quick
            test_ag_gemm_end_to_end;
          Alcotest.test_case "missing notify deadlocks" `Quick
            test_ag_gemm_missing_notify_deadlocks;
          Alcotest.test_case "missing wait corrupts" `Quick
            test_ag_gemm_missing_wait_corrupts;
          Alcotest.test_case "overlap positive" `Quick
            test_ag_gemm_overlap_beats_serial;
          Alcotest.test_case "validate bad channel" `Quick
            test_program_validate_catches_bad_channel;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "dropped notify deadlocks" `Quick
            test_fault_dropped_notify_deadlocks;
          Alcotest.test_case "weakened waits corrupt" `Quick
            test_fault_weakened_waits_corrupt;
          Alcotest.test_case "delay only slows" `Quick
            test_fault_delay_only_slows;
        ] );
      ( "stream properties",
        [
          qc prop_pipeline_preserves_consistency;
          qc prop_unsafe_pipeline_never_beats_verifier;
          qc prop_runtime_deterministic;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "fence discipline" `Quick
            test_codegen_fence_discipline;
          Alcotest.test_case "acquire before mma" `Quick
            test_codegen_acquire_precedes_mma;
          Alcotest.test_case "remote copies" `Quick
            test_codegen_remote_copies;
          Alcotest.test_case "tir target" `Quick test_codegen_tir_target;
          Alcotest.test_case "rank out of range" `Quick
            test_codegen_rank_out_of_range;
        ] );
      ( "runtime scheduling",
        [
          Alcotest.test_case "wave quantization" `Quick
            test_runtime_wave_quantization;
          Alcotest.test_case "single wave" `Quick test_runtime_single_wave;
          Alcotest.test_case "dynamic SM sharing" `Quick
            test_runtime_roles_share_sms_dynamically;
          Alcotest.test_case "pipelining hides load latency" `Quick
            test_pipelining_hides_load_latency;
        ] );
      ( "design space",
        [
          Alcotest.test_case "enumeration" `Quick
            test_design_space_enumeration;
          Alcotest.test_case "coupled" `Quick test_coupled_config;
          Alcotest.test_case "tuner picks fastest" `Quick
            test_tuner_picks_fastest;
          Alcotest.test_case "tuner skips failures" `Quick
            test_tuner_skips_failures;
        ] );
    ]
