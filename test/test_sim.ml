(* Tests for the discrete-event simulation substrate. *)

open Tilelink_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  let pop () =
    match Pqueue.pop q with Some e -> e.Pqueue.payload | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun s -> Pqueue.push q 1.0 s) [ "x"; "y"; "z" ];
  let pop () =
    match Pqueue.pop q with Some e -> e.Pqueue.payload | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo on equal priority" [ "x"; "y"; "z" ]
    [ first; second; third ]

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

(* The heap must clear vacated slots on pop: a payload dropped by the
   caller has to be collectable even while the queue itself stays
   live.  [build] keeps every strong reference inside its own frame so
   only the (possibly leaked) heap slot could keep the payload alive. *)
let test_pqueue_pop_releases_payload () =
  let build () =
    let q = Pqueue.create () in
    let w = Weak.create 1 in
    let v = ref 42 in
    Weak.set w 0 (Some v);
    Pqueue.push q 1.0 v;
    Pqueue.push q 2.0 (ref 0);
    ignore (Pqueue.pop q);
    (q, w)
  in
  let q, w = build () in
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check w 0);
  Alcotest.(check int) "queue still usable" 1 (Pqueue.length q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  let build () =
    let w = Weak.create 1 in
    let v = ref 7 in
    Weak.set w 0 (Some v);
    Pqueue.push q 1.0 v;
    Pqueue.push q 2.0 (ref 0);
    w
  in
  let w = build () in
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  Gc.full_major ();
  Alcotest.(check bool) "cleared payloads collected" false (Weak.check w 0);
  (* The insertion sequence restarts, so FIFO tie-breaking behaves like
     a fresh queue. *)
  List.iter (fun v -> Pqueue.push q 1.0 (ref v)) [ 1; 2 ];
  let pop () =
    match Pqueue.pop q with Some e -> !(e.Pqueue.payload) | None -> -1
  in
  let first = pop () in
  let second = pop () in
  Alcotest.(check (list int)) "fifo after clear" [ 1; 2 ] [ first; second ]

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order"
    ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p ()) priorities;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some e -> e.Pqueue.priority >= last && drain e.Pqueue.priority
      in
      drain neg_infinity)

(* ------------------------------------------------------------------ *)
(* Engine + Process                                                    *)
(* ------------------------------------------------------------------ *)

let test_clock_advances () =
  let engine = Engine.create () in
  let finished = ref (-1.0) in
  Process.spawn engine (fun () ->
      Process.wait 5.0;
      Process.wait 2.5;
      finished := Engine.now engine);
  Engine.run engine;
  check_float "ends at 7.5" 7.5 !finished

let test_processes_interleave () =
  let engine = Engine.create () in
  let log = ref [] in
  let emit tag () = log := (tag, Engine.now engine) :: !log in
  Process.spawn engine (fun () ->
      emit "a0" ();
      Process.wait 10.0;
      emit "a1" ());
  Process.spawn engine (fun () ->
      Process.wait 4.0;
      emit "b0" ();
      Process.wait 4.0;
      emit "b1" ());
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "interleaving order"
    [ ("a0", 0.0); ("b0", 4.0); ("b1", 8.0); ("a1", 10.0) ]
    (List.rev !log)

let test_spawn_at () =
  let engine = Engine.create () in
  let t = ref 0.0 in
  Process.spawn ~at:3.0 engine (fun () -> t := Engine.now engine);
  Engine.run engine;
  check_float "starts at 3" 3.0 !t

let test_run_until () =
  let engine = Engine.create () in
  let count = ref 0 in
  Process.spawn engine (fun () ->
      for _ = 1 to 10 do
        Process.wait 1.0;
        incr count
      done);
  Engine.run ~until:4.5 engine;
  Alcotest.(check int) "4 ticks by t=4.5" 4 !count

let test_run_until_boundary_and_resume () =
  let engine = Engine.create () in
  let count = ref 0 in
  Process.spawn engine (fun () ->
      for _ = 1 to 6 do
        Process.wait 1.0;
        incr count
      done);
  (* An event scheduled exactly at the limit still fires. *)
  Engine.run ~until:3.0 engine;
  Alcotest.(check int) "3 ticks by t=3.0" 3 !count;
  check_float "clock at last event" 3.0 (Engine.now engine);
  (* The remaining events survive the bounded run and a later
     unbounded run drains them. *)
  Engine.run engine;
  Alcotest.(check int) "all ticks after resume" 6 !count;
  check_float "ends at 6" 6.0 (Engine.now engine)

let test_run_until_idle_advances_clock () =
  let engine = Engine.create () in
  Process.spawn engine (fun () -> Process.wait 1.0);
  Engine.run ~until:9.0 engine;
  check_float "idle clock advances to the limit" 9.0 (Engine.now engine)

let test_join_latch () =
  let engine = Engine.create () in
  let joined_at = ref (-1.0) in
  let join =
    Process.spawn_all engine
      [
        (fun () -> Process.wait 3.0);
        (fun () -> Process.wait 7.0);
        (fun () -> Process.wait 1.0);
      ]
  in
  Process.spawn engine (fun () ->
      Process.Join.wait join;
      joined_at := Engine.now engine);
  Engine.run engine;
  check_float "join waits for slowest" 7.0 !joined_at

let test_deadlock_detection () =
  let engine = Engine.create () in
  Process.spawn engine (fun () ->
      (* Suspend with a register that never resumes. *)
      Process.suspend (fun _resume -> ()));
  Alcotest.check_raises "deadlock raised"
    (Engine.Deadlock
       "simulation deadlock: 1 process(es) still blocked at t=0.000")
    (fun () -> Engine.run engine)

let test_negative_wait_rejected () =
  let engine = Engine.create () in
  let raised = ref false in
  Process.spawn engine (fun () ->
      try Process.wait (-1.0) with Invalid_argument _ -> raised := true);
  Engine.run engine;
  Alcotest.(check bool) "invalid_arg" true !raised

(* ------------------------------------------------------------------ *)
(* Resource                                                            *)
(* ------------------------------------------------------------------ *)

let test_resource_blocks_and_grants () =
  let engine = Engine.create () in
  let sms = Resource.create engine ~name:"sm" ~capacity:4 in
  let order = ref [] in
  let worker tag units dt () =
    Resource.use sms units (fun () ->
        Process.wait dt;
        order := (tag, Engine.now engine) :: !order)
  in
  Process.spawn engine (worker "big" 4 10.0);
  Process.spawn engine (worker "small" 1 1.0);
  Engine.run engine;
  (* capacity taken by big, so small runs after. *)
  Alcotest.(check (list (pair string (float 1e-9))))
    "fifo admission"
    [ ("big", 10.0); ("small", 11.0) ]
    (List.rev !order)

let test_resource_concurrent_fit () =
  let engine = Engine.create () in
  let sms = Resource.create engine ~name:"sm" ~capacity:4 in
  let ends = ref [] in
  let worker units dt () =
    Resource.use sms units (fun () ->
        Process.wait dt;
        ends := Engine.now engine :: !ends)
  in
  Process.spawn engine (worker 2 5.0);
  Process.spawn engine (worker 2 5.0);
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "both end at 5" [ 5.0; 5.0 ] !ends

let test_resource_utilization () =
  let engine = Engine.create () in
  let r = Resource.create engine ~name:"u" ~capacity:2 in
  Process.spawn engine (fun () ->
      Resource.use r 2 (fun () -> Process.wait 10.0);
      Process.wait 10.0);
  Engine.run engine;
  check_float "busy integral" 20.0 (Resource.busy_time r);
  check_float "utilization 50%" 0.5 (Resource.utilization r ~horizon:20.0)

let test_resource_over_release () =
  let engine = Engine.create () in
  let r = Resource.create engine ~name:"o" ~capacity:1 in
  Alcotest.(check bool) "over release rejected" true
    (try
       Resource.release r 1;
       false
     with Invalid_argument _ -> true)

let test_resource_too_large_request () =
  let engine = Engine.create () in
  let r = Resource.create engine ~name:"x" ~capacity:2 in
  let raised = ref false in
  Process.spawn engine (fun () ->
      try Resource.acquire r 3 with Invalid_argument _ -> raised := true);
  Engine.run engine;
  Alcotest.(check bool) "oversized acquire rejected" true !raised

let prop_resource_never_negative =
  QCheck.Test.make ~name:"resource availability stays within [0, capacity]"
    ~count:100
    QCheck.(
      pair (int_range 1 4)
        (small_list (pair (int_range 1 3) (float_bound_exclusive 5.0))))
    (fun (capacity, jobs) ->
      let engine = Engine.create () in
      let r = Resource.create engine ~name:"p" ~capacity in
      let ok = ref true in
      List.iter
        (fun (units, dt) ->
          let units = min units capacity in
          Process.spawn engine (fun () ->
              Resource.use r units (fun () ->
                  if
                    Resource.available r < 0
                    || Resource.available r > capacity
                  then ok := false;
                  Process.wait (Float.abs dt))))
        jobs;
      Engine.run engine;
      !ok && Resource.available r = capacity)

(* ------------------------------------------------------------------ *)
(* Bandwidth                                                           *)
(* ------------------------------------------------------------------ *)

let test_bandwidth_duration () =
  let engine = Engine.create () in
  let link =
    Bandwidth.create engine ~name:"nvl" ~gbps:100.0 ~latency_us:2.0 ()
  in
  (* 100 GB/s = 1e5 B/us; 1e6 bytes take 10us + 2us latency. *)
  check_float "duration" 12.0 (Bandwidth.duration link ~bytes:1.0e6)

let test_bandwidth_serializes () =
  let engine = Engine.create () in
  let link =
    Bandwidth.create engine ~name:"nvl" ~gbps:100.0 ~latency_us:0.0 ()
  in
  let ends = ref [] in
  let sender () =
    Bandwidth.transfer link ~bytes:1.0e6;
    ends := Engine.now engine :: !ends
  in
  Process.spawn engine sender;
  Process.spawn engine sender;
  Engine.run engine;
  Alcotest.(check (list (float 1e-6)))
    "fifo serialization" [ 20.0; 10.0 ] !ends

let test_bandwidth_streams () =
  let engine = Engine.create () in
  let link =
    Bandwidth.create engine ~name:"mesh" ~gbps:100.0 ~latency_us:0.0
      ~streams:2 ()
  in
  let ends = ref [] in
  let sender () =
    Bandwidth.transfer link ~bytes:1.0e6;
    ends := Engine.now engine :: !ends
  in
  Process.spawn engine sender;
  Process.spawn engine sender;
  Engine.run engine;
  Alcotest.(check (list (float 1e-6)))
    "parallel streams" [ 10.0; 10.0 ] !ends

let test_bandwidth_accounting () =
  let engine = Engine.create () in
  let link =
    Bandwidth.create engine ~name:"n" ~gbps:50.0 ~latency_us:1.0 ()
  in
  Process.spawn engine (fun () ->
      Bandwidth.transfer link ~bytes:1000.0;
      Bandwidth.transfer link ~bytes:2000.0);
  Engine.run engine;
  check_float "bytes" 3000.0 (Bandwidth.bytes_moved link);
  Alcotest.(check int) "count" 2 (Bandwidth.transfer_count link)

(* ------------------------------------------------------------------ *)
(* Counter                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_wait_release () =
  let engine = Engine.create () in
  let c = Counter.create ~name:"barrier" () in
  let woke_at = ref (-1.0) in
  Process.spawn engine (fun () ->
      Counter.await_ge c 3;
      woke_at := Engine.now engine);
  Process.spawn engine (fun () ->
      for _ = 1 to 3 do
        Process.wait 2.0;
        Counter.add c 1
      done);
  Engine.run engine;
  check_float "woken when value reaches 3" 6.0 !woke_at

let test_counter_already_satisfied () =
  let engine = Engine.create () in
  let c = Counter.create () in
  Counter.add c 5;
  let woke = ref false in
  Process.spawn engine (fun () ->
      Counter.await_ge c 5;
      woke := true);
  Engine.run engine;
  Alcotest.(check bool) "no blocking when satisfied" true !woke

let test_counter_set_at_least () =
  let engine = Engine.create () in
  let c = Counter.create () in
  Counter.set_at_least c 4;
  Counter.set_at_least c 2;
  Alcotest.(check int) "monotonic" 4 (Counter.value c);
  ignore engine

let test_counter_multiple_waiters () =
  let engine = Engine.create () in
  let c = Counter.create () in
  let woke = ref [] in
  List.iter
    (fun (tag, threshold) ->
      Process.spawn engine (fun () ->
          Counter.await_ge c threshold;
          woke := (tag, Engine.now engine) :: !woke))
    [ ("t1", 1); ("t2", 2); ("t3", 3) ];
  Process.spawn engine (fun () ->
      Process.wait 1.0;
      Counter.add c 2;
      Process.wait 1.0;
      Counter.add c 1);
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "waiters wake by threshold"
    [ ("t1", 1.0); ("t2", 1.0); ("t3", 2.0) ]
    (List.rev !woke)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_busy_time_merges () =
  let tr = Trace.create () in
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"a" ~t0:0.0 ~t1:5.0;
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"b" ~t0:3.0 ~t1:8.0;
  Trace.add tr ~rank:0 ~lane:Trace.Dma ~label:"c" ~t0:10.0 ~t1:12.0;
  check_float "union of overlapping spans" 10.0 (Trace.busy_time tr);
  check_float "filtered"
    2.0
    (Trace.busy_time ~pred:(fun s -> s.Trace.lane = Trace.Dma) tr);
  check_float "duration" 12.0 (Trace.duration tr)

let test_trace_busy_time_nested_adjacent () =
  let tr = Trace.create () in
  (* Nested: [0,10] fully contains [2,4] and [5,9]. *)
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"outer" ~t0:0.0 ~t1:10.0;
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"in1" ~t0:2.0 ~t1:4.0;
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"in2" ~t0:5.0 ~t1:9.0;
  check_float "nested spans collapse" 10.0 (Trace.busy_time tr);
  (* Adjacent: [10,12] touches [12,15] with no gap. *)
  Trace.add tr ~rank:0 ~lane:Trace.Dma ~label:"left" ~t0:10.0 ~t1:12.0;
  Trace.add tr ~rank:0 ~lane:Trace.Dma ~label:"right" ~t0:12.0 ~t1:15.0;
  check_float "adjacent spans fuse" 15.0 (Trace.busy_time tr);
  (* Identical duplicates count once. *)
  Trace.add tr ~rank:1 ~lane:Trace.Dma ~label:"dup" ~t0:20.0 ~t1:21.0;
  Trace.add tr ~rank:1 ~lane:Trace.Dma ~label:"dup" ~t0:20.0 ~t1:21.0;
  check_float "duplicates collapse" 16.0 (Trace.busy_time tr)

let string_contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_trace_render_nonempty () =
  let tr = Trace.create () in
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"gemm" ~t0:0.0 ~t1:4.0;
  Trace.add tr ~rank:1 ~lane:Trace.Dma ~label:"copy" ~t0:2.0 ~t1:6.0;
  let s = Trace.render tr in
  Alcotest.(check bool) "mentions compute lane" true
    (string_contains s "compute-sm");
  Alcotest.(check bool) "mentions dma lane" true (string_contains s "dma")

(* ------------------------------------------------------------------ *)
(* More engine / process edges                                         *)
(* ------------------------------------------------------------------ *)

let test_nested_spawn () =
  let engine = Engine.create () in
  let log = ref [] in
  Process.spawn engine (fun () ->
      Process.wait 1.0;
      Process.spawn ~at:2.0 engine (fun () ->
          log := ("child", Engine.now engine) :: !log);
      Process.wait 0.5;
      log := ("parent", Engine.now engine) :: !log);
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "nested spawn timing"
    [ ("parent", 1.5); ("child", 3.0) ]
    (List.rev !log)

let test_join_zero () =
  let engine = Engine.create () in
  let woke = ref false in
  let join = Process.Join.create 0 in
  Process.spawn engine (fun () ->
      Process.Join.wait join;
      woke := true);
  Engine.run engine;
  Alcotest.(check bool) "zero-latch never blocks" true !woke

let test_schedule_at () =
  let engine = Engine.create () in
  let t = ref 0.0 in
  Engine.schedule_at engine ~time:7.0 (fun () -> t := Engine.now engine);
  Engine.run engine;
  check_float "fires at absolute time" 7.0 !t;
  Alcotest.(check bool) "past time rejected" true
    (try Engine.schedule_at engine ~time:1.0 (fun () -> ()); false
     with Invalid_argument _ -> true)

let test_engine_counters () =
  let engine = Engine.create () in
  Engine.schedule engine ~delay:1.0 (fun () -> ());
  Engine.schedule engine ~delay:2.0 (fun () -> ());
  Alcotest.(check int) "pending" 2 (Engine.pending_events engine);
  Engine.run engine;
  Alcotest.(check int) "executed" 2 (Engine.executed_events engine);
  Alcotest.(check int) "drained" 0 (Engine.pending_events engine)

let test_yield_interleaves_same_time () =
  let engine = Engine.create () in
  let log = ref [] in
  Process.spawn engine (fun () ->
      log := "a1" :: !log;
      Process.yield ();
      log := "a2" :: !log);
  Process.spawn engine (fun () -> log := "b" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "yield lets b run" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let test_bandwidth_zero_bytes () =
  let engine = Engine.create () in
  let link = Bandwidth.create engine ~name:"z" ~gbps:10.0 ~latency_us:2.0 () in
  let t = ref (-1.0) in
  Process.spawn engine (fun () ->
      Bandwidth.transfer link ~bytes:0.0;
      t := Engine.now engine);
  Engine.run engine;
  check_float "latency only" 2.0 !t

let test_counter_reset () =
  let c = Counter.create () in
  Counter.add c 3;
  Counter.reset c;
  Alcotest.(check int) "reset to zero" 0 (Counter.value c)

let test_trace_disabled_records_nothing () =
  let tr = Trace.create ~enabled:false () in
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"x" ~t0:0.0 ~t1:1.0;
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans tr))

let test_trace_chrome_json_wellformed () =
  let tr = Trace.create () in
  Trace.add tr ~rank:0 ~lane:Trace.Compute_sm ~label:"a\"b" ~t0:0.0 ~t1:1.0;
  Trace.add tr ~rank:1 ~lane:Trace.Dma ~label:"c" ~t0:1.0 ~t1:2.0;
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[');
  Alcotest.(check bool) "escaped quote" true
    (string_contains json "a\\\"b");
  Alcotest.(check bool) "both events" true
    (string_contains json "\"pid\":1")

let test_resource_queue_length () =
  let engine = Engine.create () in
  let r = Resource.create engine ~name:"q" ~capacity:1 in
  Process.spawn engine (fun () -> Resource.use r 1 (fun () -> Process.wait 5.0));
  Process.spawn engine (fun () -> Resource.use r 1 (fun () -> ()));
  Process.spawn engine (fun () ->
      Process.wait 1.0;
      Alcotest.(check int) "one waiter" 1 (Resource.queue_length r));
  Engine.run engine

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  check_float "speedup" 2.0 (Stats.speedup ~baseline:10.0 ~candidate:5.0);
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_stats_percentile () =
  let xs = List.init 10 (fun i -> float_of_int (i + 1)) in
  (* Nearest rank: ceil(p/100 * n)-th smallest, no interpolation. *)
  check_float "p50 of 1..10" 5.0 (Stats.percentile 50.0 xs);
  check_float "p90 of 1..10" 9.0 (Stats.percentile 90.0 xs);
  check_float "p91 rounds up" 10.0 (Stats.percentile 91.0 xs);
  check_float "p0 is min" 1.0 (Stats.percentile 0.0 xs);
  check_float "negative p clamps to min" 1.0 (Stats.percentile (-5.0) xs);
  check_float "p100 is max" 10.0 (Stats.percentile 100.0 xs);
  check_float "p>100 clamps to max" 10.0 (Stats.percentile 150.0 xs);
  check_float "singleton" 7.0 (Stats.percentile 99.0 [ 7.0 ]);
  check_float "unsorted input" 3.0
    (Stats.percentile 50.0 [ 9.0; 1.0; 3.0; 2.0; 7.0 ]);
  Alcotest.(check bool) "empty list rejected" true
    (try
       ignore (Stats.percentile 50.0 []);
       false
     with Invalid_argument _ -> true)

(* Regression: NaN samples used to flow straight through the
   [min]/[max] folds and poison every comparison-based aggregate into
   NaN; they must be rejected loudly instead. *)
let test_stats_nan_rejected () =
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  let poisoned = [ 1.0; Float.nan; 3.0 ] in
  rejects "minimum" (fun () -> Stats.minimum poisoned);
  rejects "maximum" (fun () -> Stats.maximum poisoned);
  rejects "percentile" (fun () -> Stats.percentile 50.0 poisoned);
  rejects "all-NaN percentile" (fun () ->
      Stats.percentile 50.0 [ Float.nan ]);
  (* Infinities are orderable and must still pass. *)
  check_float "infinity is a valid sample" 1.0
    (Stats.minimum [ Float.infinity; 1.0 ])

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30) (float_range (-100.0) 100.0))
        (float_range (-10.0) 110.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      Stats.minimum xs <= v && v <= Stats.maximum xs)

let test_engine_blocked_time () =
  let engine = Engine.create () in
  let c = Counter.create () in
  Process.spawn engine (fun () -> Counter.await_ge c 1);
  Process.spawn engine (fun () ->
      Process.wait 3.0;
      Counter.add c 1);
  Engine.run engine;
  check_float "one process blocked for 3us" 3.0 (Engine.blocked_time engine);
  Alcotest.(check int) "nobody left blocked" 0
    (Engine.blocked_processes engine)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean for positive samples" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 100.0))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "pop releases payload" `Quick
            test_pqueue_pop_releases_payload;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qc prop_pqueue_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "interleaving" `Quick test_processes_interleave;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "run until boundary + resume" `Quick
            test_run_until_boundary_and_resume;
          Alcotest.test_case "run until idle clock" `Quick
            test_run_until_idle_advances_clock;
          Alcotest.test_case "join latch" `Quick test_join_latch;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
          Alcotest.test_case "negative wait" `Quick
            test_negative_wait_rejected;
        ] );
      ( "resource",
        [
          Alcotest.test_case "blocks and grants" `Quick
            test_resource_blocks_and_grants;
          Alcotest.test_case "concurrent fit" `Quick
            test_resource_concurrent_fit;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "over release" `Quick test_resource_over_release;
          Alcotest.test_case "too large request" `Quick
            test_resource_too_large_request;
          qc prop_resource_never_negative;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "duration" `Quick test_bandwidth_duration;
          Alcotest.test_case "serializes" `Quick test_bandwidth_serializes;
          Alcotest.test_case "streams" `Quick test_bandwidth_streams;
          Alcotest.test_case "accounting" `Quick test_bandwidth_accounting;
        ] );
      ( "counter",
        [
          Alcotest.test_case "wait/release" `Quick test_counter_wait_release;
          Alcotest.test_case "already satisfied" `Quick
            test_counter_already_satisfied;
          Alcotest.test_case "set_at_least" `Quick test_counter_set_at_least;
          Alcotest.test_case "multiple waiters" `Quick
            test_counter_multiple_waiters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "busy time merges" `Quick
            test_trace_busy_time_merges;
          Alcotest.test_case "nested and adjacent spans" `Quick
            test_trace_busy_time_nested_adjacent;
          Alcotest.test_case "render" `Quick test_trace_render_nonempty;
        ] );
      ( "edges",
        [
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "join zero" `Quick test_join_zero;
          Alcotest.test_case "schedule_at" `Quick test_schedule_at;
          Alcotest.test_case "engine counters" `Quick test_engine_counters;
          Alcotest.test_case "yield" `Quick test_yield_interleaves_same_time;
          Alcotest.test_case "zero-byte transfer" `Quick
            test_bandwidth_zero_bytes;
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
          Alcotest.test_case "trace disabled" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "chrome json" `Quick
            test_trace_chrome_json_wellformed;
          Alcotest.test_case "resource queue length" `Quick
            test_resource_queue_length;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "NaN rejected" `Quick test_stats_nan_rejected;
          qc prop_geomean_le_mean;
          qc prop_percentile_bounded;
        ] );
      ( "blocked time",
        [
          Alcotest.test_case "counter wait accounted" `Quick
            test_engine_blocked_time;
        ] );
    ]
