(* The auto-overlap planner: synthesized Pc protocols must match the
   hand-written kernels at the same design point (timing and bits),
   survive the analyzer, and extend to operator graphs no hand-written
   kernel covers. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine
open Tilelink_workloads

let spec_gpu = Calib.test_machine
let make_cluster world () = Cluster.create spec_gpu ~world_size:world

let ring world = Tile.Ring_from_self { segments = world }

(* The sweep design point the hand-written bench suite uses. *)
let suite_config ~world ~comm_tm =
  {
    Design_space.comm_tile = (comm_tm, 128);
    compute_tile = (2, 2);
    comm_order = ring world;
    compute_order = ring world;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

let candidate ?(transfer = Planner.Pull) ?(chunks = 2) config =
  { Planner.pl_config = config; pl_transfer = transfer; pl_chunks = chunks }

let exact_equal msg expected actual =
  Alcotest.(check bool)
    (msg ^ " bit-identical")
    true
    (Tensor.shape expected = Tensor.shape actual
    && Tensor.data expected = Tensor.data actual)

let run_data ?backend ~memory ~world program =
  let cluster = Cluster.create spec_gpu ~world_size:world in
  Runtime.run ~data:true ~memory ?backend cluster program

(* ------------------------------------------------------------------ *)
(* Synthesis mirrors the hand-written kernel                           *)
(* ------------------------------------------------------------------ *)

let mlp_spec = { Mlp.m = 8; k = 4; n = 6; world_size = 2 }

let test_synthesize_matches_handwritten () =
  let graph = Planned.mlp_graph mlp_spec in
  List.iter
    (fun transfer ->
      let config = suite_config ~world:2 ~comm_tm:2 in
      let planned =
        Planner.synthesize graph (candidate ~transfer config) ~spec_gpu
      in
      let hand =
        Mlp.ag_gemm_program ~k_chunks:2
          ~transfer:(match transfer with Planner.Pull -> `Pull | Push -> `Push)
          ~config mlp_spec ~spec_gpu
      in
      (match Analyzer.check planned with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "synthesized program failed the analyzer");
      let t_planned =
        (Runtime.run (make_cluster 2 ()) planned).Runtime.makespan
      in
      let t_hand = (Runtime.run (make_cluster 2 ()) hand).Runtime.makespan in
      Alcotest.(check (float 0.0))
        (Planner.transfer_to_string transfer ^ " makespan identical")
        t_hand t_planned;
      (* Same data actions at the same design point: bits match the
         hand-written run, not just the reference. *)
      let mem_planned = Mlp.ag_gemm_alloc mlp_spec ~seed:11 in
      let mem_hand = Mlp.ag_gemm_alloc mlp_spec ~seed:11 in
      ignore (run_data ~memory:mem_planned ~world:2 planned);
      ignore (run_data ~memory:mem_hand ~world:2 hand);
      for rank = 0 to 1 do
        let name = Printf.sprintf "%s rank %d" (Planner.transfer_to_string transfer) rank in
        exact_equal (name ^ " vs handwritten")
          (Memory.find mem_hand ~rank ~name:"y")
          (Memory.find mem_planned ~rank ~name:"y");
        exact_equal (name ^ " vs reference")
          (Mlp.ag_gemm_reference mem_planned mlp_spec ~rank)
          (Memory.find mem_planned ~rank ~name:"y")
      done)
    [ Planner.Pull; Planner.Push ]

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let small_candidates ~world ~shard_rows =
  let tiles = List.filter (fun t -> shard_rows mod t = 0) [ 2; shard_rows ] in
  List.concat_map
    (fun comm_tm ->
      List.concat_map
        (fun transfer ->
          List.map
            (fun chunks ->
              candidate ~transfer ~chunks (suite_config ~world ~comm_tm))
            [ 1; 2 ])
        [ Planner.Pull; Planner.Push ])
    (List.sort_uniq compare tiles)

let test_search_picks_analyzer_clean_winner () =
  let graph = Planned.mlp_graph mlp_spec in
  let candidates =
    (* One deliberately infeasible point: comm tile 3 does not divide
       the 4-row shard, so the planner must count a skipped build. *)
    candidate (suite_config ~world:2 ~comm_tm:3)
    :: small_candidates ~world:2 ~shard_rows:4
  in
  match
    Planner.search ~candidates graph ~spec_gpu ~make_cluster:(make_cluster 2)
      ()
  with
  | None -> Alcotest.fail "search returned no plan"
  | Some plan ->
    Alcotest.(check int)
      "infeasible candidate skipped at build" 1
      plan.Planner.p_outcome.Tune.skipped_build;
    Alcotest.(check int)
      "no analyzer rejections in this space" 0
      plan.Planner.p_outcome.Tune.skipped_race;
    (match Analyzer.check plan.Planner.p_program with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "winner failed the analyzer");
    (* The winner is the makespan minimum over every evaluation. *)
    List.iter
      (fun e ->
        Alcotest.(check bool) "winner is minimal" true
          (plan.Planner.p_time <= e.Tune.time))
      plan.Planner.p_outcome.Tune.evaluated

let test_search_deterministic () =
  let graph = Planned.mlp_graph mlp_spec in
  let candidates = small_candidates ~world:2 ~shard_rows:4 in
  let run ?pool () =
    match
      Planner.search ?pool ~candidates graph ~spec_gpu
        ~make_cluster:(make_cluster 2) ()
    with
    | None -> Alcotest.fail "search returned no plan"
    | Some plan -> plan
  in
  let a = run () in
  let pool = Tilelink_exec.Pool.create ~domains:2 () in
  let b = run ~pool () in
  Alcotest.(check string)
    "same winner across pool widths"
    (Planner.fingerprint a.Planner.p_candidate)
    (Planner.fingerprint b.Planner.p_candidate);
  Alcotest.(check (float 0.0)) "same makespan" a.Planner.p_time b.Planner.p_time

(* ------------------------------------------------------------------ *)
(* Randomized specs: planner winner == hand-written, both backends     *)
(* ------------------------------------------------------------------ *)

let qcheck_planner_matches_handwritten =
  QCheck.Test.make ~count:6
    ~name:"random specs: planner winner analyzer-clean, bits = hand-written"
    QCheck.(triple (int_range 1 3) (int_range 2 5) (int_range 2 6))
    (fun (shard_tiles, k, n) ->
      let world = 2 + (shard_tiles mod 2) * 2 in
      (* world in {2, 4} *)
      let shard_rows = 2 * shard_tiles in
      let spec =
        { Mlp.m = world * shard_rows; k; n; world_size = world }
      in
      let graph = Planned.mlp_graph spec in
      let candidates = small_candidates ~world ~shard_rows in
      match
        Planner.search ~candidates graph ~spec_gpu
          ~make_cluster:(make_cluster world) ()
      with
      | None -> QCheck.Test.fail_report "no plan"
      | Some plan ->
        (match Analyzer.check plan.Planner.p_program with
        | Ok () -> ()
        | Error _ -> QCheck.Test.fail_report "winner failed the analyzer");
        let cand = plan.Planner.p_candidate in
        let hand =
          Mlp.ag_gemm_program ~k_chunks:cand.Planner.pl_chunks
            ~transfer:
              (match cand.Planner.pl_transfer with
              | Planner.Pull -> `Pull
              | Planner.Push -> `Push)
            ~config:cand.Planner.pl_config spec ~spec_gpu
        in
        List.for_all
          (fun backend ->
            let mem_p = Mlp.ag_gemm_alloc spec ~seed:23 in
            let mem_h = Mlp.ag_gemm_alloc spec ~seed:23 in
            ignore (run_data ~backend ~memory:mem_p ~world plan.Planner.p_program);
            ignore (run_data ~backend ~memory:mem_h ~world hand);
            List.for_all
              (fun rank ->
                let y_p = Memory.find mem_p ~rank ~name:"y" in
                let y_h = Memory.find mem_h ~rank ~name:"y" in
                Tensor.data y_p = Tensor.data y_h
                && Tensor.data y_p
                   = Tensor.data (Mlp.ag_gemm_reference mem_p spec ~rank))
              (List.init world Fun.id))
          [ `Sequential; `Parallel 2 ])

(* ------------------------------------------------------------------ *)
(* Novel graphs: no hand-written counterpart                           *)
(* ------------------------------------------------------------------ *)

let test_softmax_graph () =
  let m = 8 and k = 5 and world = 2 in
  let graph = Planned.softmax_graph ~m ~k ~world in
  match
    Planner.search
      ~candidates:(small_candidates ~world ~shard_rows:(m / world))
      graph ~spec_gpu ~make_cluster:(make_cluster world) ()
  with
  | None -> Alcotest.fail "search returned no plan"
  | Some plan ->
    let memory = Planned.softmax_alloc ~m ~k ~world ~seed:7 in
    ignore (run_data ~memory ~world plan.Planner.p_program);
    let expected = Planned.softmax_reference memory ~m ~world in
    for rank = 0 to world - 1 do
      exact_equal
        (Printf.sprintf "softmax rank %d" rank)
        expected
        (Memory.find memory ~rank ~name:"p")
    done

let test_fused_graph_zero_manual_protocol () =
  let spec = { Mlp.m = 8; k = 4; n = 6; world_size = 2 } in
  let graph = Planned.fused_graph spec in
  match
    Planner.search ~candidates:(small_candidates ~world:2 ~shard_rows:4) graph
      ~spec_gpu ~make_cluster:(make_cluster 2) ()
  with
  | None -> Alcotest.fail "search returned no plan"
  | Some plan ->
    (match Analyzer.check plan.Planner.p_program with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "fused winner failed the analyzer");
    let memory = Planned.fused_alloc spec ~seed:13 in
    ignore (run_data ~memory ~world:2 plan.Planner.p_program);
    let softmax_expected = Planned.fused_softmax_reference memory spec in
    for rank = 0 to 1 do
      exact_equal
        (Printf.sprintf "fused gemm rank %d" rank)
        (Planned.fused_gemm_reference memory spec ~rank)
        (Memory.find memory ~rank ~name:"y");
      exact_equal
        (Printf.sprintf "fused softmax rank %d" rank)
        softmax_expected
        (Memory.find memory ~rank ~name:"p")
    done

let test_moe_graph () =
  let m = 8 and k = 4 and n = 5 and world = 2 in
  let graph = Planned.moe_graph ~m ~k ~n ~world in
  match
    Planner.search
      ~candidates:(small_candidates ~world ~shard_rows:(m / world))
      graph ~spec_gpu ~make_cluster:(make_cluster world) ()
  with
  | None -> Alcotest.fail "search returned no plan"
  | Some plan ->
    let memory = Planned.moe_alloc ~m ~k ~n ~world ~seed:19 in
    ignore (run_data ~memory ~world plan.Planner.p_program);
    for rank = 0 to world - 1 do
      List.iter
        (fun (weights, out) ->
          exact_equal
            (Printf.sprintf "%s rank %d" out rank)
            (Planned.moe_reference memory ~weights ~rank)
            (Memory.find memory ~rank ~name:out))
        [ ("w_gate", "h_gate"); ("w_up", "h_up") ]
    done

(* ------------------------------------------------------------------ *)
(* Space enumeration                                                   *)
(* ------------------------------------------------------------------ *)

let test_default_space () =
  let graph = Planned.mlp_graph { Mlp.m = 256; k = 64; n = 48; world_size = 8 } in
  let space = Planner.default_space graph in
  let candidates = Planner.enumerate space in
  Alcotest.(check int) "size agrees" (Planner.size space)
    (List.length candidates);
  Alcotest.(check bool) "non-empty" true (candidates <> []);
  let shard_rows = 256 / 8 in
  List.iter
    (fun c ->
      let comm_tm = fst c.Planner.pl_config.Design_space.comm_tile in
      Alcotest.(check bool) "comm tile divides the shard" true
        (shard_rows mod comm_tm = 0))
    candidates;
  let fps = List.map Planner.fingerprint candidates in
  Alcotest.(check int) "fingerprints distinct"
    (List.length fps)
    (List.length (List.sort_uniq compare fps))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "planner"
    [
      ( "synthesis",
        [
          Alcotest.test_case "matches hand-written kernel" `Quick
            test_synthesize_matches_handwritten;
        ] );
      ( "search",
        [
          Alcotest.test_case "analyzer-clean winner, skips infeasible" `Quick
            test_search_picks_analyzer_clean_winner;
          Alcotest.test_case "deterministic across pool widths" `Quick
            test_search_deterministic;
          qc qcheck_planner_matches_handwritten;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "softmax graph" `Quick test_softmax_graph;
          Alcotest.test_case "fused graph, zero manual protocol" `Quick
            test_fused_graph_zero_manual_protocol;
          Alcotest.test_case "moe ffn proxy graph" `Quick test_moe_graph;
          Alcotest.test_case "default space" `Quick test_default_space;
        ] );
    ]
