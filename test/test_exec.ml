(* Tests for the multicore evaluation subsystem: the domain pool, the
   content-addressed evaluation cache, and the parallel autotuner
   built on top of them. *)

open Tilelink_exec
open Tilelink_core
open Tilelink_machine
open Tilelink_workloads
module Json = Tilelink_obs.Json

let unwrap results = List.map Pool.get results

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let pool = Pool.create ~domains:4 () in
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int))
    "parallel map preserves input order" expected
    (unwrap (Pool.map (Some pool) (fun x -> x * x) xs));
  Alcotest.(check (list int))
    "sequential fallback identical" expected
    (unwrap (Pool.map None (fun x -> x * x) xs))

let test_pool_captures_exceptions () =
  let pool = Pool.create ~domains:2 () in
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  let check_results results =
    List.iteri
      (fun i r ->
        match r with
        | Ok v -> Alcotest.(check int) "value at index" i v
        | Error (Failure msg) ->
          Alcotest.(check string) "failure at index" (string_of_int i) msg;
          Alcotest.(check bool) "only multiples of 3 fail" true (i mod 3 = 0)
        | Error e -> raise e)
      results
  in
  let xs = List.init 20 Fun.id in
  check_results (Pool.map (Some pool) f xs);
  check_results (Pool.map None f xs);
  Alcotest.check_raises "get re-raises" (Failure "boom") (fun () ->
      ignore (Pool.get (List.hd (Pool.map (Some pool) failwith [ "boom" ]))))

let test_pool_map_array () =
  let pool = Pool.create ~domains:3 () in
  let thunks = Array.init 17 (fun i () -> 2 * i) in
  let results = Pool.map_array pool thunks in
  Array.iteri
    (fun i r -> Alcotest.(check int) "slot" (2 * i) (Pool.get r))
    results

let test_pool_stats () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "fixed domain count" 2 (Pool.domains pool);
  ignore (Pool.map (Some pool) Fun.id (List.init 10 Fun.id));
  ignore (Pool.map (Some pool) Fun.id (List.init 5 Fun.id));
  let s = Pool.stats pool in
  Alcotest.(check int) "tasks accumulate" 15 s.Pool.tasks_run;
  Alcotest.(check int) "sweeps counted" 2 s.Pool.runs;
  Alcotest.(check bool) "wall clock measured" true (s.Pool.wall_time_s >= 0.0)

let test_pool_empty_and_single () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check (list int)) "empty input" []
    (unwrap (Pool.map (Some pool) Fun.id []));
  Alcotest.(check (list int)) "single task" [ 9 ]
    (unwrap (Pool.map (Some pool) (fun x -> x + 1) [ 8 ]))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_fingerprint () =
  let a = Cache.fingerprint "workload|machine|config" in
  Alcotest.(check string)
    "deterministic" a
    (Cache.fingerprint "workload|machine|config");
  Alcotest.(check bool)
    "sensitive to the descriptor" true
    (a <> Cache.fingerprint "workload|machine|config2");
  Alcotest.(check int) "64-bit hex digest" 16 (String.length a)

let test_cache_find_add () =
  let c = Cache.create () in
  Alcotest.(check bool) "miss on empty" true (Cache.find c "k" = None);
  Cache.add c "k" (Json.Num 1.5);
  (match Cache.find c "k" with
  | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "hit value" 1.5 v
  | _ -> Alcotest.fail "expected a hit");
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Cache.misses c);
  Alcotest.(check int) "one entry" 1 (Cache.length c)

let test_cache_persistence () =
  let path = Filename.temp_file "tilelink_cache" ".json" in
  let c = Cache.create ~path () in
  Cache.add c "alpha" (Json.Num 3.25);
  Cache.add c "beta" (Json.Obj [ ("makespan_us", Json.Num 7.0) ]);
  Cache.save c;
  let reloaded = Cache.create ~path () in
  Alcotest.(check int) "entries reloaded" 2 (Cache.length reloaded);
  (match Cache.find reloaded "alpha" with
  | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "value survives" 3.25 v
  | _ -> Alcotest.fail "alpha missing after reload");
  (match Cache.find reloaded "beta" with
  | Some row ->
    (match Json.member "makespan_us" row with
    | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "nested row" 7.0 v
    | _ -> Alcotest.fail "nested field missing")
  | None -> Alcotest.fail "beta missing after reload");
  Sys.remove path

let test_cache_ignores_corrupt_file () =
  let path = Filename.temp_file "tilelink_cache" ".json" in
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  let c = Cache.create ~path () in
  Alcotest.(check int) "corrupt file ignored" 0 (Cache.length c);
  Cache.add c "k" (Json.Num 1.0);
  Cache.save c;
  Alcotest.(check int) "save repairs the file" 1
    (Cache.length (Cache.create ~path ()));
  Sys.remove path

let test_cache_concurrent_access () =
  let pool = Pool.create ~domains:4 () in
  let c = Cache.create () in
  let results =
    Pool.map (Some pool)
      (fun i ->
        let key = Printf.sprintf "key-%d" (i mod 8) in
        Cache.add c key (Json.Num (float_of_int (i mod 8)));
        match Cache.find c key with
        | Some (Json.Num v) -> int_of_float v = i mod 8
        | _ -> false)
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "all lookups consistent" true
    (List.for_all Fun.id (unwrap results));
  Alcotest.(check int) "distinct keys" 8 (Cache.length c)

(* ------------------------------------------------------------------ *)
(* Tune on the pool: determinism and cache effectiveness on the        *)
(* Table-2 MLP design space                                            *)
(* ------------------------------------------------------------------ *)

(* Table 2's AG+GEMM point: S=8192, H=4096, I=11008 on 8 ranks, with
   the curated candidate list the benches search. *)
let table2_search ?pool ?cache () =
  let world = 8 in
  let shapes = { Mlp.m = 8192; k = 4096; n = 2752; world_size = world } in
  match
    Tune.search_programs ?pool ?cache ~workload:"test:table2-ag-gemm"
      ~build:(fun config ->
        Mlp.ag_gemm_program ~config shapes ~spec_gpu:Calib.h800)
      ~make_cluster:(fun () -> Cluster.create Calib.h800 ~world_size:world)
      (Tuned.ag_gemm_candidates ~world_size:world)
  with
  | Some o -> o
  | None -> Alcotest.fail "table-2 search built no candidate"

let evaluations o =
  List.map (fun e -> (e.Tune.config, e.Tune.time)) o.Tune.evaluated

let test_parallel_search_matches_sequential () =
  let seq = table2_search () in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let par = table2_search ~pool () in
      Alcotest.(check bool)
        (Printf.sprintf "best config identical (%d domains)" domains)
        true
        (par.Tune.best.Tune.config = seq.Tune.best.Tune.config);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "best time identical (%d domains)" domains)
        seq.Tune.best.Tune.time par.Tune.best.Tune.time;
      Alcotest.(check bool)
        (Printf.sprintf "evaluated set identical (%d domains)" domains)
        true
        (evaluations par = evaluations seq);
      Alcotest.(check int)
        (Printf.sprintf "skip accounting identical (%d domains)" domains)
        seq.Tune.skipped par.Tune.skipped)
    [ 2; 4 ]

let test_second_run_served_from_cache () =
  let cache = Cache.create () in
  let pool = Pool.create ~domains:2 () in
  let cold = table2_search ~pool ~cache () in
  Alcotest.(check int) "cold run misses everything" 0 cold.Tune.cache_hits;
  let warm = table2_search ~pool ~cache () in
  let total = warm.Tune.cache_hits + warm.Tune.cache_misses in
  Alcotest.(check bool)
    (Printf.sprintf ">=90%% served from cache (%d/%d)" warm.Tune.cache_hits
       total)
    true
    (float_of_int warm.Tune.cache_hits >= 0.9 *. float_of_int total);
  Alcotest.(check bool) "warm best identical" true
    (warm.Tune.best.Tune.config = cold.Tune.best.Tune.config);
  Alcotest.(check (float 0.0))
    "warm best time identical" cold.Tune.best.Tune.time
    warm.Tune.best.Tune.time;
  Alcotest.(check bool) "warm evaluated set identical" true
    (evaluations warm = evaluations cold)

(* ------------------------------------------------------------------ *)
(* Cache schema versioning: mixed legacy / current entry shapes        *)
(* ------------------------------------------------------------------ *)

(* A tiny search (seconds of simulated time, four candidates) whose
   cache keys we can reconstruct, so individual entries can be
   rewritten into legacy shapes between runs. *)
let schema_shapes = { Mlp.m = 16; k = 4; n = 6; world_size = 4 }

let schema_config ~stages ~compute_tile =
  let ring = Tile.Ring_from_self { segments = 4 } in
  {
    Design_space.comm_tile = (2, 128);
    compute_tile;
    comm_order = ring;
    compute_order = ring;
    binding = Design_space.Comm_on_sm 1;
    stages;
    micro_block = 0;
  }

let schema_configs =
  [
    schema_config ~stages:1 ~compute_tile:(2, 2);
    schema_config ~stages:2 ~compute_tile:(2, 2);
    schema_config ~stages:1 ~compute_tile:(2, 3);
    schema_config ~stages:2 ~compute_tile:(2, 3);
  ]

let schema_search ~cache () =
  match
    Tune.search_programs ~cache ~workload:"test:schema-mlp"
      ~build:(fun config ->
        Mlp.ag_gemm_program ~config schema_shapes ~spec_gpu:Calib.test_machine)
      ~make_cluster:(fun () ->
        Cluster.create Calib.test_machine ~world_size:4)
      schema_configs
  with
  | Some o -> o
  | None -> Alcotest.fail "schema search built no candidate"

(* The exact key construction Tune.search_programs uses. *)
let schema_key config =
  let machine =
    Printf.sprintf "%s|world=%d" (Spec.fingerprint Calib.test_machine) 4
  in
  Cache.fingerprint
    (String.concat "|"
       [ "test:schema-mlp"; machine; Design_space.fingerprint config ])

let schema_tag_of key cache =
  match Cache.find cache key with
  | None -> Alcotest.fail "cache entry missing"
  | Some row -> (
    match Json.member "v" row with
    | Some (Json.Num v) -> Some (int_of_float v)
    | _ -> None)

let test_cache_schema_versioning () =
  let cache = Cache.create () in
  let cold = schema_search ~cache () in
  Alcotest.(check int) "cold run misses all four" 4 cold.Tune.cache_misses;
  (* Fresh evaluations land under the current schema, with the
     exposed-communication measurement attached. *)
  List.iter
    (fun config ->
      Alcotest.(check (option int))
        "fresh entry tagged with the current schema"
        (Some Tune.cache_schema_version)
        (schema_tag_of (schema_key config) cache))
    schema_configs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "evaluation carries exposed_comm_us" true
        (e.Tune.exposed_comm_us <> None))
    cold.Tune.evaluated;
  let measured config =
    List.find (fun e -> e.Tune.config = config) cold.Tune.evaluated
  in
  (* Rewrite the stored entries into a mix of legacy and current
     shapes: c0 as a pre-profiler bare number, c1 as an untagged object
     missing the exposed-communication field — both must invalidate —
     c2 as an untagged object carrying the full measurement (lossless
     migration) and c3 untouched under the current schema. *)
  let c0, c1, c2, c3 =
    match schema_configs with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  let mixed_cache = Cache.create () in
  Cache.add mixed_cache (schema_key c0) (Json.Num (measured c0).Tune.time);
  Cache.add mixed_cache (schema_key c1)
    (Json.Obj [ ("time", Json.Num (measured c1).Tune.time) ]);
  Cache.add mixed_cache (schema_key c2)
    (Json.Obj
       [
         ("time", Json.Num (measured c2).Tune.time);
         ( "exposed_comm_us",
           Json.Num (Option.get (measured c2).Tune.exposed_comm_us) );
       ]);
  (match Cache.find cache (schema_key c3) with
  | Some row -> Cache.add mixed_cache (schema_key c3) row
  | None -> Alcotest.fail "current-schema entry missing");
  let warm = schema_search ~cache:mixed_cache () in
  Alcotest.(check int) "legacy shapes invalidated" 2 warm.Tune.cache_misses;
  Alcotest.(check int) "migratable + current shapes hit" 2
    warm.Tune.cache_hits;
  (* Invalidation is invisible in the results: same winner, same
     per-candidate measurements — the deterministic simulator
     reproduces what the dropped entries stored. *)
  Alcotest.(check bool) "winner unchanged" true
    (warm.Tune.best.Tune.config = cold.Tune.best.Tune.config);
  Alcotest.(check bool) "evaluated set identical" true
    (evaluations warm = evaluations cold);
  (* The invalidated keys are rewritten under the current schema. *)
  List.iter
    (fun config ->
      Alcotest.(check (option int))
        "re-evaluated entry rewritten with the schema tag"
        (Some Tune.cache_schema_version)
        (schema_tag_of (schema_key config) mixed_cache))
    [ c0; c1 ];
  (* A cache entry tagged with a future schema version is never
     trusted, even if its fields look plausible. *)
  let future_cache = Cache.create () in
  Cache.add future_cache (schema_key c0)
    (Json.Obj
       [
         ( "v",
           Json.Num (float_of_int (Tune.cache_schema_version + 1)) );
         ("time", Json.Num 1.0);
         ("exposed_comm_us", Json.Num 0.5);
       ]);
  let refetched = schema_search ~cache:future_cache () in
  Alcotest.(check int) "future schema version is a miss" 4
    refetched.Tune.cache_misses

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tilelink_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "exception capture" `Quick
            test_pool_captures_exceptions;
          Alcotest.test_case "map_array" `Quick test_pool_map_array;
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "empty + single" `Quick
            test_pool_empty_and_single;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fingerprint" `Quick test_cache_fingerprint;
          Alcotest.test_case "find/add" `Quick test_cache_find_add;
          Alcotest.test_case "persistence" `Quick test_cache_persistence;
          Alcotest.test_case "corrupt file" `Quick
            test_cache_ignores_corrupt_file;
          Alcotest.test_case "concurrent access" `Quick
            test_cache_concurrent_access;
          Alcotest.test_case "schema versioning" `Quick
            test_cache_schema_versioning;
        ] );
      ( "tune",
        [
          Alcotest.test_case "parallel = sequential (table 2)" `Slow
            test_parallel_search_matches_sequential;
          Alcotest.test_case "warm cache >=90% hits" `Slow
            test_second_run_served_from_cache;
        ] );
    ]
