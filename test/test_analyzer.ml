(* Tests for the whole-program protocol analyzer: static notify/wait
   matching through the channel key space, cross-rank deadlock cycles,
   happens-before data races, mapping cross-checks, the seeded mutation
   corpus, and the Runtime/Tune wiring. *)

open Tilelink_core
open Tilelink_machine
open Tilelink_workloads

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let task label instrs = { Program.label; instrs }

let role ?(name = "sync") ?(lane = Tilelink_sim.Trace.Comm_sm) tasks =
  {
    Program.role_name = name;
    resource = Program.Sm_partition 1;
    lane;
    tasks;
  }

let notify ?(amount = 1) target =
  Instr.Notify { target; amount; releases = [] }

let wait ?(guards = []) ~threshold target =
  Instr.Wait { target; threshold; guards }

let pc ~rank ~channel = Instr.Pc { rank; channel }
let peer ~src ~dst = Instr.Peer { src; dst; channel = 0 }

(* Two ranks, each waiting for the other's signal before sending its
   own: a textbook circular wait that never makes progress. *)
let deadlock_program () =
  let plan rank =
    let other = 1 - rank in
    [
      role ~name:"ring"
        [
          task "step"
            [
              wait ~threshold:1 (peer ~src:other ~dst:rank);
              notify (peer ~src:rank ~dst:other);
            ];
        ];
    ]
  in
  Program.create ~name:"deadlock" ~world_size:2 ~pc_channels:1
    ~peer_channels:1
    [| plan 0; plan 1 |]

(* One rank: [notifies] signals of amount 1 against a single consumer
   waiting for [threshold]. *)
let counter_program ~notifies ~threshold =
  let producer =
    task "produce" (List.init notifies (fun _ -> notify (pc ~rank:0 ~channel:0)))
  in
  let consumer =
    if threshold = 0 then []
    else [ task "consume" [ wait ~threshold (pc ~rank:0 ~channel:0) ] ]
  in
  Program.create ~name:"counter" ~world_size:1 ~pc_channels:1
    ~peer_channels:1
    [| [ role ~name:"producer" [ producer ]; role ~name:"consumer" consumer ] |]

let mlp_config ~world ~comm_tile ~stages =
  {
    Design_space.comm_tile = (comm_tile, 128);
    compute_tile = (2, 2);
    comm_order = Tile.Ring_from_self { segments = world };
    compute_order = Tile.Ring_from_self { segments = world };
    binding = Design_space.Comm_on_sm 1;
    stages;
    micro_block = 0;
  }

let mlp_program ?transfer ~world ~comm_tile ~stages () =
  Mlp.ag_gemm_program ?transfer
    ~config:(mlp_config ~world ~comm_tile ~stages)
    { Mlp.m = 8 * world; k = 4; n = 6; world_size = world }
    ~spec_gpu:Calib.test_machine

let find_kind report name =
  List.filter (fun d -> Analyzer.kind_name d.Analyzer.kind = name)
    report.Analyzer.diags

let structured d = d.Analyzer.key <> "" && d.Analyzer.rank >= 0

(* ------------------------------------------------------------------ *)
(* Matching diagnostics                                                *)
(* ------------------------------------------------------------------ *)

let test_unmatched_wait () =
  let report = Analyzer.analyze (counter_program ~notifies:1 ~threshold:3) in
  Alcotest.(check bool) "not ok" false (Analyzer.ok report);
  match find_kind report "unmatched_wait" with
  | [ d ] ->
    Alcotest.(check string) "key" "pc[0][0]" d.Analyzer.key;
    Alcotest.(check int) "rank" 0 d.Analyzer.rank;
    Alcotest.(check (option int)) "channel" (Some 0) d.Analyzer.channel;
    (match d.Analyzer.kind with
    | Analyzer.Unmatched_wait { threshold; available } ->
      Alcotest.(check int) "threshold" 3 threshold;
      Alcotest.(check int) "available" 1 available
    | _ -> Alcotest.fail "wrong kind payload")
  | ds -> Alcotest.failf "expected one unmatched_wait, got %d" (List.length ds)

let test_unconsumed_notify_is_warning () =
  let report = Analyzer.analyze (counter_program ~notifies:2 ~threshold:0) in
  Alcotest.(check bool) "warnings do not fail the program" true
    (Analyzer.ok report);
  match find_kind report "unconsumed_notify" with
  | [ d ] ->
    Alcotest.(check string) "severity" "warning"
      (Analyzer.severity_to_string d.Analyzer.severity);
    Alcotest.(check string) "key" "pc[0][0]" d.Analyzer.key
  | ds ->
    Alcotest.failf "expected one unconsumed_notify, got %d" (List.length ds)

let test_epoch_reuse () =
  let report = Analyzer.analyze (counter_program ~notifies:2 ~threshold:1) in
  Alcotest.(check bool) "not ok" false (Analyzer.ok report);
  match find_kind report "epoch_reuse" with
  | [ d ] -> (
    match d.Analyzer.kind with
    | Analyzer.Epoch_reuse { available; max_threshold; waiters } ->
      Alcotest.(check int) "available" 2 available;
      Alcotest.(check int) "max threshold" 1 max_threshold;
      Alcotest.(check int) "waiters" 1 waiters
    | _ -> Alcotest.fail "wrong kind payload")
  | ds -> Alcotest.failf "expected one epoch_reuse, got %d" (List.length ds)

let test_clean_counter_ok () =
  let report = Analyzer.analyze (counter_program ~notifies:1 ~threshold:1) in
  Alcotest.(check bool) "ok" true (Analyzer.ok report);
  Alcotest.(check int) "no diags" 0 (List.length report.Analyzer.diags)

(* ------------------------------------------------------------------ *)
(* Deadlock cycles                                                     *)
(* ------------------------------------------------------------------ *)

let test_deadlock_cycle () =
  let report = Analyzer.analyze (deadlock_program ()) in
  Alcotest.(check bool) "not ok" false (Analyzer.ok report);
  match find_kind report "deadlock_cycle" with
  | [] -> Alcotest.fail "no deadlock_cycle diagnostic"
  | d :: _ -> (
    Alcotest.(check bool) "structured" true (structured d);
    match d.Analyzer.kind with
    | Analyzer.Deadlock_cycle { cycle } ->
      Alcotest.(check int) "two edges" 2 (List.length cycle);
      let ranks =
        List.sort_uniq compare
          (List.map (fun e -> e.Analyzer.e_rank) cycle)
      in
      Alcotest.(check (list int)) "both ranks in the cycle" [ 0; 1 ] ranks;
      List.iter
        (fun e ->
          Alcotest.(check bool) "edge has a key" true
            (e.Analyzer.e_key <> "");
          Alcotest.(check bool) "edge names its producer" true
            (e.Analyzer.e_producer_rank = 1 - e.Analyzer.e_rank))
        cycle
    | _ -> Alcotest.fail "wrong kind payload")

(* ------------------------------------------------------------------ *)
(* Data races                                                          *)
(* ------------------------------------------------------------------ *)

let test_read_before_acquire_race () =
  let a = Instr.access ~buffer:"buf" ~row:(0, 2) ~col:(0, 2) () in
  let program =
    Program.create ~name:"race" ~world_size:1 ~pc_channels:1
      ~peer_channels:1
      [|
        [
          role ~name:"producer" [ task "p" [ notify (pc ~rank:0 ~channel:0) ] ];
          role ~name:"consumer"
            [
              task "c"
                [
                  Instr.Load { access = a };
                  wait ~guards:[ a ] ~threshold:1 (pc ~rank:0 ~channel:0);
                ];
            ];
        ];
      |]
  in
  let report = Analyzer.analyze program in
  Alcotest.(check bool) "not ok" false (Analyzer.ok report);
  match find_kind report "data_race" with
  | [ d ] -> (
    Alcotest.(check string) "key" "pc[0][0]" d.Analyzer.key;
    match d.Analyzer.kind with
    | Analyzer.Data_race { race = Consistency.Read_before_acquire; _ } -> ()
    | _ -> Alcotest.fail "expected a read-before-acquire race")
  | ds -> Alcotest.failf "expected one data_race, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Clean workloads and the mutation corpus                             *)
(* ------------------------------------------------------------------ *)

let test_clean_workload_passes () =
  List.iter
    (fun transfer ->
      let program = mlp_program ~transfer ~world:2 ~comm_tile:2 ~stages:2 () in
      let report = Analyzer.analyze program in
      Alcotest.(check bool) "no errors" true (Analyzer.ok report);
      Alcotest.(check bool) "counts populated" true
        (report.Analyzer.keys > 0
        && report.Analyzer.notifies > 0
        && report.Analyzer.waits > 0))
    [ `Pull; `Push ]

let all_mutations =
  [
    "dropped_notify";
    "notify_epoch_off_by_one";
    "swapped_rank";
    "unsafe_hoist";
    "wait_epoch_off_by_one";
  ]

let test_mutation_corpus_all_flagged () =
  let program = mlp_program ~world:2 ~comm_tile:2 ~stages:2 () in
  let corpus = Analyzer.mutation_corpus ~seed:17 program in
  Alcotest.(check (list string))
    "every mutation applies to the MLP kernel" all_mutations
    (List.sort compare (List.map fst corpus));
  List.iter
    (fun (name, mutant) ->
      match Analyzer.errors (Analyzer.analyze mutant) with
      | [] -> Alcotest.failf "mutation %s not flagged" name
      | errors ->
        Alcotest.(check bool)
          (Printf.sprintf "%s diagnostics are structured" name)
          true
          (List.for_all structured errors))
    corpus

let test_mutation_corpus_seeded () =
  let program = mlp_program ~world:2 ~comm_tile:2 ~stages:2 () in
  let render corpus =
    List.map
      (fun (name, mutant) -> (name, (mutant : Program.t).Program.name))
      corpus
  in
  Alcotest.(check (list (pair string string)))
    "same seed, same corpus"
    (render (Analyzer.mutation_corpus ~seed:5 program))
    (render (Analyzer.mutation_corpus ~seed:5 program))

(* ------------------------------------------------------------------ *)
(* Mapping cross-check                                                 *)
(* ------------------------------------------------------------------ *)

let mapping_program ~mapping ~extra_threshold =
  let world = Mapping.ranks mapping in
  let plan rank =
    let expected =
      Mapping.expected mapping
        ~channel:(Mapping.global_channel mapping ~rank ~local:0)
    in
    [
      role ~name:"producer"
        [
          task "p"
            (List.init expected (fun _ -> notify (pc ~rank ~channel:0)));
        ];
      role ~name:"consumer"
        [
          task "c"
            [ wait ~threshold:(expected + extra_threshold) (pc ~rank ~channel:0) ];
        ];
    ]
  in
  Program.create ~name:"mapped" ~world_size:world
    ~pc_channels:(Mapping.channels_per_rank mapping)
    ~peer_channels:1
    (Array.init world plan)

let test_check_against_mapping () =
  let mapping = Mapping.static ~extent:8 ~ranks:2 ~channels_per_rank:2 ~tile:2 () in
  Alcotest.(check int) "clean protocol has no mismatches" 0
    (List.length
       (Analyzer.check_against_mapping
          (mapping_program ~mapping ~extra_threshold:0)
          ~mapping));
  match
    Analyzer.check_against_mapping
      (mapping_program ~mapping ~extra_threshold:1)
      ~mapping
  with
  | [] -> Alcotest.fail "over-threshold wait not flagged"
  | d :: _ -> (
    match d.Analyzer.kind with
    | Analyzer.Mapping_mismatch { expected; actual } ->
      Alcotest.(check int) "actual exceeds expected by one" (expected + 1)
        actual
    | _ -> Alcotest.fail "wrong kind payload")

let test_check_against_mapping_layout_guard () =
  let mapping = Mapping.static ~extent:8 ~ranks:4 ~channels_per_rank:1 ~tile:2 () in
  Alcotest.check_raises "rank mismatch rejected"
    (Invalid_argument
       "Analyzer.check_against_mapping: mapping layout does not match program")
    (fun () ->
      ignore
        (Analyzer.check_against_mapping
           (counter_program ~notifies:1 ~threshold:1)
           ~mapping))

(* ------------------------------------------------------------------ *)
(* Elastic remap cross-check                                           *)
(* ------------------------------------------------------------------ *)

(* A protocol driven entirely by a mapping: every local channel of
   every rank gets the mapping's registered number of notifies and a
   consumer waiting for exactly that threshold — so the pre-remap
   program cross-checks clean by construction, and any disagreement
   between how the mapping and the program were remapped surfaces as a
   Mapping_mismatch. *)
let full_mapping_program ~mapping =
  let world = Mapping.ranks mapping in
  let cpr = Mapping.channels_per_rank mapping in
  let plan rank =
    let channels = List.init cpr Fun.id in
    [
      role ~name:"producer"
        [
          task "p"
            (List.concat_map
               (fun local ->
                 let expected =
                   Mapping.expected mapping
                     ~channel:(Mapping.global_channel mapping ~rank ~local)
                 in
                 List.init expected (fun _ ->
                     notify (pc ~rank ~channel:local)))
               channels);
        ];
      role ~name:"consumer"
        [
          task "c"
            (List.filter_map
               (fun local ->
                 let expected =
                   Mapping.expected mapping
                     ~channel:(Mapping.global_channel mapping ~rank ~local)
                 in
                 if expected = 0 then None
                 else Some (wait ~threshold:expected (pc ~rank ~channel:local)))
               channels);
        ];
    ]
  in
  Program.create ~name:"full-mapped" ~world_size:world ~pc_channels:cpr
    ~peer_channels:1
    (Array.init world plan)

(* Remap mapping and program with the same (dead, survivors) and
   re-validate: zero violations, for mapping shapes mirroring the three
   chaos workloads (mlp 4x2, moe 4x4, attention 2x1). *)
let test_remap_cross_checks_clean () =
  List.iter
    (fun (name, mapping, dead, survivors) ->
      let program = full_mapping_program ~mapping in
      Alcotest.(check int)
        (name ^ ": pre-remap clean")
        0
        (List.length (Analyzer.check_against_mapping program ~mapping));
      let mapping' = Mapping.remap_rank mapping ~dead ~survivors in
      let program' = Fault.remap_program program ~dead ~survivors in
      Alcotest.(check int)
        (name ^ ": post-remap clean")
        0
        (List.length
           (Analyzer.check_against_mapping program' ~mapping:mapping')))
    [
      ( "mlp-style",
        Mapping.static ~extent:16 ~ranks:4 ~channels_per_rank:2 ~tile:2 (),
        2,
        [ 0; 1; 3 ] );
      ( "moe-style",
        Mapping.static ~extent:32 ~ranks:4 ~channels_per_rank:4 ~tile:2 (),
        1,
        [ 0; 2; 3 ] );
      ( "attention-style",
        Mapping.static ~extent:16 ~ranks:2 ~channels_per_rank:1 ~tile:8 (),
        0,
        [ 1 ] );
    ]

(* A broken remap — the program's survivor list silently misses a rank
   the mapping rerouted to — must be flagged with structured
   Mapping_mismatch diagnostics, not pass or crash.  cpr = 4 is chosen
   so both survivor counts grow the stride to the same 6 (keeping the
   layouts comparable) while the round-robin genuinely diverges: the
   program parks rerouted tiles on fresh slots the mapping never
   registered. *)
let test_remap_missing_survivor_flagged () =
  let mapping =
    Mapping.static ~extent:32 ~ranks:4 ~channels_per_rank:4 ~tile:2 ()
  in
  let program = full_mapping_program ~mapping in
  let mapping' = Mapping.remap_rank mapping ~dead:0 ~survivors:[ 1; 2; 3 ] in
  let program' = Fault.remap_program program ~dead:0 ~survivors:[ 1; 2 ] in
  match Analyzer.check_against_mapping program' ~mapping:mapping' with
  | [] -> Alcotest.fail "mismatched survivor lists not flagged"
  | diags ->
    List.iter
      (fun d ->
        match d.Analyzer.kind with
        | Analyzer.Mapping_mismatch { expected; actual } ->
          Alcotest.(check bool) "actual exceeds registered tiles" true
            (actual > expected)
        | _ -> Alcotest.fail "expected Mapping_mismatch diagnostics")
      diags

(* ------------------------------------------------------------------ *)
(* Wiring: Runtime pre-flight and Tune skip accounting                 *)
(* ------------------------------------------------------------------ *)

let test_runtime_preflight_rejects () =
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  Alcotest.(check bool) "Protocol_violation before simulation" true
    (try
       ignore (Runtime.run ~analyze:true cluster (deadlock_program ()));
       false
     with Analyzer.Protocol_violation (_ :: _) -> true)

let test_runtime_preflight_accepts_clean () =
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let program = mlp_program ~world:2 ~comm_tile:2 ~stages:2 () in
  let result = Runtime.run ~analyze:true cluster program in
  Alcotest.(check bool) "clean program still runs" true
    (result.Runtime.makespan > 0.0)

let test_tune_counts_skipped_race () =
  let configs =
    List.map
      (fun stages -> mlp_config ~world:2 ~comm_tile:2 ~stages)
      [ 1; 2 ]
  in
  let outcome =
    Tune.search_programs
      ~build:(fun c ->
        if c.Design_space.stages = 2 then deadlock_program ()
        else mlp_program ~world:2 ~comm_tile:2 ~stages:1 ())
      ~make_cluster:(fun () ->
        Cluster.create Calib.test_machine ~world_size:2)
      configs
  in
  match outcome with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    Alcotest.(check int) "one candidate rejected statically" 1
      o.Tune.skipped_race;
    Alcotest.(check int) "skip total includes races" 1 o.Tune.skipped;
    Alcotest.(check int) "the clean candidate evaluated" 1
      (List.length o.Tune.evaluated)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_report_json_parses () =
  let report = Analyzer.analyze (deadlock_program ()) in
  let rendered =
    Tilelink_obs.Json.to_string ~indent:true (Analyzer.report_to_json report)
  in
  match Tilelink_obs.Json.parse rendered with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "report JSON not parseable: %s" msg

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Table-2-style AG+GEMM points: the safe pipeliner's output must pass
   both the per-task consistency verifier and the whole-program
   analyzer; whenever the fence-ignoring pipeliner actually breaks the
   stream, the analyzer must flag the program. *)
let prop_pipeline_vs_analyzer =
  QCheck.Test.make
    ~name:"safe pipelining passes the analyzer; unsafe hoists are flagged"
    ~count:24
    QCheck.(
      quad (int_range 1 4) (oneofl [ 2; 4 ]) (oneofl [ 2; 4 ])
        (oneofl [ `Pull; `Push ]))
    (fun (stages, world, comm_tile, transfer) ->
      let program = mlp_program ~transfer ~world ~comm_tile ~stages () in
      let safe = Pipeline.pipeline_program ~stages program in
      let safe_ok =
        Consistency.verify_program safe = Ok ()
        && Analyzer.ok (Analyzer.analyze safe)
      in
      let unsafe = Pipeline.pipeline_program_unsafe ~stages program in
      let unsafe_caught =
        match Consistency.verify_program unsafe with
        | Ok () -> true (* the hoist happened to stay behind every fence *)
        | Error _ -> Analyzer.errors (Analyzer.analyze unsafe) <> []
      in
      safe_ok && unsafe_caught)

(* The four-stage unsafe hoist on the 2-rank MLP kernel is the
   documented miscompile: it must never slip through. *)
let test_unsafe_hoist_always_flagged () =
  let program = mlp_program ~world:2 ~comm_tile:2 ~stages:1 () in
  let unsafe = Pipeline.pipeline_program_unsafe ~stages:4 program in
  (match Consistency.verify_program unsafe with
  | Ok () -> Alcotest.fail "unsafe hoist did not break the stream"
  | Error _ -> ());
  match Analyzer.errors (Analyzer.analyze unsafe) with
  | [] -> Alcotest.fail "analyzer missed the unsafe hoist"
  | errors ->
    Alcotest.(check bool) "flagged as a data race" true
      (List.exists
         (fun d -> Analyzer.kind_name d.Analyzer.kind = "data_race")
         errors)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "analyzer"
    [
      ( "matching",
        [
          Alcotest.test_case "unmatched wait" `Quick test_unmatched_wait;
          Alcotest.test_case "unconsumed notify warns" `Quick
            test_unconsumed_notify_is_warning;
          Alcotest.test_case "epoch reuse" `Quick test_epoch_reuse;
          Alcotest.test_case "clean counter ok" `Quick test_clean_counter_ok;
        ] );
      ( "deadlock",
        [ Alcotest.test_case "cross-rank cycle" `Quick test_deadlock_cycle ] );
      ( "races",
        [
          Alcotest.test_case "read before acquire" `Quick
            test_read_before_acquire_race;
          Alcotest.test_case "unsafe hoist flagged" `Quick
            test_unsafe_hoist_always_flagged;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "clean MLP passes" `Quick
            test_clean_workload_passes;
          Alcotest.test_case "mutation corpus flagged" `Quick
            test_mutation_corpus_all_flagged;
          Alcotest.test_case "mutation corpus seeded" `Quick
            test_mutation_corpus_seeded;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "cross-check" `Quick test_check_against_mapping;
          Alcotest.test_case "layout guard" `Quick
            test_check_against_mapping_layout_guard;
          Alcotest.test_case "remap cross-checks clean" `Quick
            test_remap_cross_checks_clean;
          Alcotest.test_case "missing survivor flagged" `Quick
            test_remap_missing_survivor_flagged;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "runtime pre-flight rejects" `Quick
            test_runtime_preflight_rejects;
          Alcotest.test_case "runtime pre-flight accepts clean" `Quick
            test_runtime_preflight_accepts_clean;
          Alcotest.test_case "tune counts skipped_race" `Quick
            test_tune_counts_skipped_race;
          Alcotest.test_case "report json parses" `Quick
            test_report_json_parses;
        ] );
      ("properties", [ qc prop_pipeline_vs_analyzer ]);
    ]
