(* Topology subsystem tests: preset resolution and layout geometry,
   heterogeneous scale factors, the seeded co-tenant NIC tax,
   topology-threaded failover (bit-identical numerics on hetero16
   across every workload), and the partition triage paths — an
   island-wide crash behind a NIC cut must become a structural
   "partition" stall naming the cut, and a crash with no survivors at
   all must stay a structural stall, never a hang. *)

open Tilelink_core
open Tilelink_machine
open Tilelink_workloads
module Chaos = Tilelink_core.Chaos
module Harness = Tilelink_chaos.Harness

(* ------------------------------------------------------------------ *)
(* Presets and layout geometry                                         *)
(* ------------------------------------------------------------------ *)

let test_preset_resolution () =
  Alcotest.(check int) "five shipped presets" 5 (List.length Topology.all);
  List.iter
    (fun topo ->
      match Topology.of_string (Topology.name topo) with
      | Ok t -> Alcotest.(check string) "roundtrip" (Topology.name topo)
                  (Topology.name t)
      | Error e -> Alcotest.fail e)
    Topology.all;
  (match Topology.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus preset resolved"
  | Error msg ->
    (* The error doubles as the usage hint: it must name the presets. *)
    List.iter
      (fun name ->
        let n = String.length name in
        let rec go i =
          i + n <= String.length msg
          && (String.sub msg i n = name || go (i + 1))
        in
        Alcotest.(check bool)
          (Printf.sprintf "hint names %s" name)
          true (go 0))
      (Topology.names ()));
  Alcotest.(check (list int))
    "natural worlds"
    [ 8; 16; 32; 16; 16 ]
    (List.map Topology.natural_world Topology.all);
  Alcotest.(check bool) "flat8 is flat" true (Topology.is_flat Topology.flat8);
  Alcotest.(check bool) "hetero16 is not flat" false
    (Topology.is_flat Topology.hetero16);
  Alcotest.(check bool) "cotenant2x8 is not flat" false
    (Topology.is_flat Topology.cotenant2x8)

let test_layout_island_mapping () =
  let l = Topology.layout Topology.islands2x8 ~world_size:16 in
  Alcotest.(check int) "two islands" 2 (Topology.islands l);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "rank %d island" r)
        (r / 8)
        (Topology.island_of l r))
    (List.init 16 Fun.id);
  let flat = Topology.layout Topology.flat8 ~world_size:8 in
  Alcotest.(check int) "flat: one island" 1 (Topology.islands flat);
  Alcotest.(check bool) "flat: no NIC tax" true (flat.Topology.l_nic_tax = None)

let test_hetero_scale_factors () =
  let l = Topology.layout Topology.hetero16 ~world_size:16 in
  let compute = Array.to_list l.Topology.l_compute_scale in
  let link = Array.to_list l.Topology.l_link_scale in
  Alcotest.(check int) "per-rank compute scales" 16 (List.length compute);
  Alcotest.(check bool) "compute scales >= 1" true
    (List.for_all (fun s -> s >= 1.0) compute);
  Alcotest.(check bool) "some ranks straggle" true
    (List.exists (fun s -> s > 1.0) compute);
  Alcotest.(check bool) "link scales in (0, 1]" true
    (List.for_all (fun s -> s > 0.0 && s <= 1.0) link);
  Alcotest.(check bool) "some links degraded" true
    (List.exists (fun s -> s < 1.0) link)

let test_cotenant_tax_seeded () =
  let l = Topology.layout Topology.cotenant2x8 ~world_size:16 in
  match l.Topology.l_nic_tax with
  | None -> Alcotest.fail "cotenant topology carries no NIC tax"
  | Some tax ->
    (* Pure in (island, now): replaying the same instant must yield the
       same rate, and every draw must stay inside the documented band. *)
    List.iter
      (fun now ->
        List.iter
          (fun island ->
            let a = tax ~island ~now and b = tax ~island ~now in
            Alcotest.(check (float 0.0)) "tax pure in (island, now)" a b;
            Alcotest.(check bool) "tax in [0.45, 1.0]" true
              (a >= 0.45 && a <= 1.0))
          [ 0; 1 ])
      [ 0.0; 17.0; 49.9; 50.1; 123.4; 999.0 ]

(* ------------------------------------------------------------------ *)
(* Topology-threaded failover                                          *)
(* ------------------------------------------------------------------ *)

(* A forced crash on the heterogeneous two-island topology must fail
   over to bit-identical numerics on every workload — stragglers, slow
   links and cross-island remaps reshape the timeline only. *)
let prop_hetero_failover_bit_identical =
  QCheck.Test.make
    ~name:"hetero16: crash failover bit-identical on every workload" ~count:3
    QCheck.(int_range 0 10_000)
    (fun seed ->
      List.for_all
        (fun workload ->
          let t =
            Harness.run_trial ~crash_ranks:1 ~topology:Topology.hetero16
              ~workload ~seed ~index:0 ()
          in
          t.Harness.numerics_ok
          && t.Harness.classification = Harness.Failed_over
          && t.Harness.topology = Some "hetero16")
        [ Harness.Mlp_ag_gemm; Harness.Moe_part2; Harness.Attention_ag ])

(* On the genuinely flat preset the island machinery must be inert:
   failover works and never counts a cross-island replay. *)
let test_flat8_no_cross_island_replays () =
  let t =
    Harness.run_trial ~crash_ranks:1 ~topology:Topology.flat8
      ~workload:Harness.Mlp_ag_gemm ~seed:42 ~index:0 ()
  in
  Alcotest.(check bool) "failed over" true
    (t.Harness.classification = Harness.Failed_over);
  Alcotest.(check bool) "numerics intact" true t.Harness.numerics_ok;
  Alcotest.(check int) "no cross-island replays" 0
    t.Harness.cross_island_replays

(* Without a topology the trial and summary JSON must not mention the
   topology fields at all — existing seeds stay byte-identical. *)
let test_default_summary_mentions_no_topology () =
  let json =
    Harness.summary_to_string
      (Harness.run_trials ~crash_ranks:1 ~workload:Harness.Mlp_ag_gemm
         ~seed:42 ~trials:2 ())
  in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "no topology key" false (contains "topology");
  Alcotest.(check bool) "no cross_island_replays key" false
    (contains "cross_island_replays")

(* ------------------------------------------------------------------ *)
(* Partition triage                                                    *)
(* ------------------------------------------------------------------ *)

(* A small two-island topology drawn for the world-4 MLP, so the
   partition scenarios stay cheap to simulate. *)
let topo2x2 =
  {
    Topology.name = "islands2x2";
    shape = Topology.Islands { islands = 2; per_island = 2 };
    hetero = false;
    cotenant = false;
  }

let small_mlp = { Mlp.m = 16; k = 4; n = 6; world_size = 4 }

let small_config =
  let ring = Tile.Ring_from_self { segments = 4 } in
  {
    Design_space.comm_tile = (2, 128);
    compute_tile = (2, 2);
    comm_order = ring;
    compute_order = ring;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

let quiet_spec =
  {
    (Chaos.no_machine_faults Chaos.default_spec) with
    Chaos.drop_prob = 0.0;
    duplicate_prob = 0.0;
    delay_prob = 0.0;
  }

(* Island 0 dies whole behind a partitioned NIC: survivors exist, but
   every one sits across the cut, so re-hosting the dead shard would
   have to cross the partitioned fabric.  The coordinator must triage
   this as a structural "partition" stall naming the cut — never a
   hang, never a bare deadlock. *)
let test_island_crash_behind_partition_is_structural () =
  let topology = topo2x2 in
  let layout = Topology.layout topology ~world_size:4 in
  let build () =
    Mlp.ag_gemm_program ~config:small_config small_mlp
      ~spec_gpu:Calib.test_machine
  in
  let ideal =
    let cluster = Cluster.create ~topology Calib.test_machine ~world_size:4 in
    (Runtime.run cluster (build ())).Runtime.makespan
  in
  let t1 = 0.3 *. ideal in
  let schedule =
    Chaos.with_nic_partitions
      (Chaos.with_crashes
         (Chaos.plan ~spec:quiet_spec ~horizon_us:(2.0 *. ideal) ~layout
            ~seed:7 ~world_size:4 ())
         [
           (0, { Chaos.cr_at = t1; cr_until = None });
           (1, { Chaos.cr_at = t1; cr_until = None });
         ])
      [ (0, { Chaos.w_from = 0.0; w_until = Float.infinity; w_factor = 0.0 }) ]
  in
  let watchdog =
    {
      Chaos.poll_interval_us = ideal /. 50.0;
      wait_timeout_us = 2.0 *. ideal;
      stall_timeout_us = 8.0 *. ideal;
      max_retries = 5;
      backoff_base_us = ideal /. 10.0;
      retry = true;
      policy = Chaos.Failover;
    }
  in
  let control = Chaos.control ~schedule ~watchdog () in
  let memory = Mlp.ag_gemm_alloc small_mlp ~seed:11 in
  let cluster = Cluster.create ~topology Calib.test_machine ~world_size:4 in
  match
    Runtime.run ~data:true ~memory ~chaos:control ~rebuild:build cluster
      (build ())
  with
  | _ -> Alcotest.fail "island crash behind a partition must not complete"
  | exception Chaos.Stall s ->
    Alcotest.(check string) "triaged as partition" "partition"
      s.Chaos.stall_kind;
    Alcotest.(check string) "names the cut NIC" "nic[0]" s.Chaos.stall_key;
    Alcotest.(check bool) "owner is a dead island-0 rank" true
      (Topology.island_of layout s.Chaos.stall_owner = 0);
    Alcotest.(check bool) "stall recorded in recovery" true
      (List.exists
         (fun r -> r.Chaos.stall_kind = "partition")
         control.Chaos.c_recovery.Chaos.stalls)

(* Crashing every island leaves zero cross-island survivors: the
   harness must classify the trial Stalled with structured stall info
   — the run terminates with a diagnosis instead of hanging. *)
let test_all_islands_crash_is_structural () =
  let t =
    Harness.run_trial ~crash_ranks:4 ~topology:topo2x2
      ~workload:Harness.Mlp_ag_gemm ~seed:42 ~index:0 ()
  in
  Alcotest.(check bool) "classified stalled" true
    (t.Harness.classification = Harness.Stalled);
  match t.Harness.stall with
  | None -> Alcotest.fail "no-survivor island crash carries no stall info"
  | Some s ->
    Alcotest.(check bool) "stall names a key" true (s.Harness.si_key <> "")

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "topology"
    [
      ( "presets",
        [
          Alcotest.test_case "preset resolution" `Quick test_preset_resolution;
          Alcotest.test_case "layout island mapping" `Quick
            test_layout_island_mapping;
          Alcotest.test_case "hetero scale factors" `Quick
            test_hetero_scale_factors;
          Alcotest.test_case "cotenant tax seeded" `Quick
            test_cotenant_tax_seeded;
        ] );
      ( "failover",
        [
          qc prop_hetero_failover_bit_identical;
          Alcotest.test_case "flat8: no cross-island replays" `Quick
            test_flat8_no_cross_island_replays;
          Alcotest.test_case "default summary mentions no topology" `Quick
            test_default_summary_mentions_no_topology;
        ] );
      ( "partition",
        [
          Alcotest.test_case "island crash behind partition is structural"
            `Quick test_island_crash_behind_partition_is_structural;
          Alcotest.test_case "all islands crash is structural" `Quick
            test_all_islands_crash_is_structural;
        ] );
    ]
