(* Correctness tests for the overlapped workload kernels: every
   generated schedule must reproduce the reference computation exactly,
   across tile sizes, orders and resource bindings. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine
open Tilelink_workloads

let tensor_close ?(atol = 1e-9) msg expected actual =
  let report = Check.compare ~atol expected actual in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" msg
       (Format.asprintf "%a" Check.pp_report report))
    true report.Check.within

let base_config =
  {
    Design_space.comm_tile = (2, 2);
    compute_tile = (2, 3);
    comm_order = Tile.Row_major;
    compute_order = Tile.Row_major;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

(* ------------------------------------------------------------------ *)
(* AG + GEMM                                                           *)
(* ------------------------------------------------------------------ *)

let ag_spec = { Mlp.m = 8; k = 4; n = 6; world_size = 2 }

let run_ag_gemm ?transfer config =
  let memory = Mlp.ag_gemm_alloc ag_spec ~seed:11 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let program =
    Mlp.ag_gemm_program ?transfer ~config ag_spec
      ~spec_gpu:Calib.test_machine
  in
  let result = Runtime.run ~data:true ~memory cluster program in
  (memory, result)

let check_ag_gemm ?transfer config msg =
  let memory, _ = run_ag_gemm ?transfer config in
  for rank = 0 to 1 do
    tensor_close
      (Printf.sprintf "%s rank %d" msg rank)
      (Mlp.ag_gemm_reference memory ag_spec ~rank)
      (Memory.find memory ~rank ~name:"y")
  done

let test_ag_gemm_sm_binding () = check_ag_gemm base_config "sm binding"

let test_ag_gemm_dma_binding () =
  check_ag_gemm
    { base_config with Design_space.binding = Design_space.Comm_on_dma }
    "dma binding"

let test_ag_gemm_hybrid_binding () =
  check_ag_gemm
    {
      base_config with
      Design_space.binding =
        Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 1 };
    }
    "hybrid binding"

let test_ag_gemm_ring_orders () =
  check_ag_gemm
    {
      base_config with
      Design_space.comm_order = Tile.Ring_from_self { segments = 2 };
      compute_order = Tile.Ring_from_self { segments = 2 };
    }
    "ring orders"

let test_ag_gemm_mismatched_tiles () =
  (* Comm tile 4 rows vs compute tile 2 rows — the decoupled sizes the
     paper motivates. *)
  check_ag_gemm
    { base_config with Design_space.comm_tile = (4, 4) }
    "decoupled tile sizes"

let test_ag_gemm_deep_pipeline () =
  check_ag_gemm { base_config with Design_space.stages = 4 } "stages=4"

let test_ag_gemm_push_mode () =
  check_ag_gemm ~transfer:`Push base_config "push mode"

let test_ag_gemm_push_mode_dma () =
  check_ag_gemm ~transfer:`Push
    { base_config with Design_space.binding = Design_space.Comm_on_dma }
    "push mode dma"

let test_ag_gemm_push_world4 () =
  (* Push mode across 4 ranks with decoupled tile sizes. *)
  let spec4 = { Mlp.m = 16; k = 4; n = 6; world_size = 4 } in
  let memory = Mlp.ag_gemm_alloc spec4 ~seed:12 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let config =
    {
      base_config with
      Design_space.comm_tile = (4, 4);
      comm_order = Tile.Ring_from_self { segments = 4 };
    }
  in
  let program =
    Mlp.ag_gemm_program ~transfer:`Push ~config spec4
      ~spec_gpu:Calib.test_machine
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  for rank = 0 to 3 do
    tensor_close
      (Printf.sprintf "push world-4 rank %d" rank)
      (Mlp.ag_gemm_reference memory spec4 ~rank)
      (Memory.find memory ~rank ~name:"y")
  done

let test_ag_gemm_push_consistent () =
  let program =
    Mlp.ag_gemm_program ~transfer:`Push ~config:base_config ag_spec
      ~spec_gpu:Calib.test_machine
  in
  match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v

let test_ag_gemm_program_is_consistent () =
  let program =
    Mlp.ag_gemm_program ~config:base_config ag_spec
      ~spec_gpu:Calib.test_machine
  in
  (match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v)

let test_ag_gemm_rejects_bad_tile () =
  Alcotest.(check bool) "non-dividing comm tile rejected" true
    (try
       ignore
         (Mlp.ag_gemm_program
            ~config:{ base_config with Design_space.comm_tile = (3, 3) }
            ag_spec ~spec_gpu:Calib.test_machine);
       false
     with Invalid_argument _ -> true)

let prop_ag_gemm_correct_random_shapes =
  QCheck.Test.make
    ~name:"ag+gemm correct across random shapes, tiles and modes" ~count:25
    QCheck.(
      quad
        (pair (int_range 1 2) (int_range 1 3)) (* world exp, tiles/shard *)
        (int_range 1 3)                        (* comm tile rows *)
        (pair (int_range 1 5) (int_range 1 5)) (* k, n *)
        (pair (pair (int_range 1 4) (int_range 1 4)) bool))
    (* compute tile, push? *)
      (fun ((world_exp, tiles_per_shard), comm_tm, (k, n), ((ctm, ctn), push)) ->
      (* Shrinking may step outside the generator ranges; clamp. *)
      let world = 1 lsl max 1 world_exp in
      let tiles_per_shard = max 1 tiles_per_shard in
      let comm_tm = max 1 comm_tm in
      let k = max 1 k and n = max 1 n in
      let ctm = max 1 ctm and ctn = max 1 ctn in
      let m = world * comm_tm * tiles_per_shard in
      let spec = { Mlp.m; k; n; world_size = world } in
      let config =
        {
          Design_space.comm_tile = (comm_tm, comm_tm);
          compute_tile = (ctm, ctn);
          comm_order = Tile.Ring_from_self { segments = world };
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages = 2;
          micro_block = 0;
        }
      in
      let memory = Mlp.ag_gemm_alloc spec ~seed:(m + k + n) in
      let cluster = Cluster.create Calib.test_machine ~world_size:world in
      let program =
        Mlp.ag_gemm_program
          ~transfer:(if push then `Push else `Pull)
          ~config spec ~spec_gpu:Calib.test_machine
      in
      ignore (Runtime.run ~data:true ~memory cluster program);
      List.for_all
        (fun rank ->
          Check.close
            (Mlp.ag_gemm_reference memory spec ~rank)
            (Memory.find memory ~rank ~name:"y"))
        (List.init world (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* GEMM + ring ReduceScatter                                           *)
(* ------------------------------------------------------------------ *)

let rs_spec = { Mlp.rs_m = 8; rs_k = 3; rs_n = 4; rs_world = 2 }

let rs_config =
  {
    Design_space.comm_tile = (2, 2);
    compute_tile = (2, 2);
    comm_order = Tile.Row_major;
    compute_order = Tile.Row_major;
    binding = Design_space.Comm_on_sm 1;
    stages = 1;
    micro_block = 0;
  }

let check_gemm_rs config msg =
  let memory = Mlp.gemm_rs_alloc rs_spec ~seed:21 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let program =
    Mlp.gemm_rs_program ~config rs_spec ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 1 do
    tensor_close
      (Printf.sprintf "%s rank %d" msg rank)
      (Mlp.gemm_rs_reference memory rs_spec ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_gemm_rs_basic () = check_gemm_rs rs_config "ring rs"

let test_gemm_rs_hybrid () =
  check_gemm_rs
    {
      rs_config with
      Design_space.binding =
        Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 1 };
    }
    "hybrid rs"

let test_gemm_rs_decoupled_tiles () =
  check_gemm_rs
    {
      rs_config with
      Design_space.comm_tile = (4, 4);
      compute_tile = (2, 2);
    }
    "decoupled rs tiles"

let test_gemm_rs_larger_world () =
  let spec = { Mlp.rs_m = 16; rs_k = 3; rs_n = 4; rs_world = 4 } in
  let memory = Mlp.gemm_rs_alloc spec ~seed:31 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Mlp.gemm_rs_program ~config:rs_config spec ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 3 do
    tensor_close
      (Printf.sprintf "world-4 rank %d" rank)
      (Mlp.gemm_rs_reference memory spec ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_gemm_rs_consistent () =
  let program =
    Mlp.gemm_rs_program ~config:rs_config rs_spec
      ~spec_gpu:Calib.test_machine
  in
  (match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v)

(* ------------------------------------------------------------------ *)
(* MoE: dynamic mapping                                                *)
(* ------------------------------------------------------------------ *)

let moe_spec =
  {
    Moe.tokens = 8;
    hidden = 4;
    intermediate = 8;
    experts = 3;
    topk = 2;
    world_size = 2;
  }

let test_moe_part1 () =
  let route = Moe.routing moe_spec ~seed:5 in
  let memory = Moe.part1_alloc moe_spec ~seed:41 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let config =
    {
      Moe.comm_tile_rows = 2;
      group_tile_rows = 2;
      comm_binding = Design_space.Comm_on_sm 1;
    }
  in
  let program =
    Moe.part1_program ~config moe_spec route ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 1 do
    tensor_close
      (Printf.sprintf "moe part1 rank %d" rank)
      (Moe.part1_reference memory moe_spec route ~rank)
      (Memory.find memory ~rank ~name:"moe_mid")
  done

let test_moe_part1_dma () =
  let route = Moe.routing moe_spec ~seed:6 in
  let memory = Moe.part1_alloc moe_spec ~seed:42 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let config =
    {
      Moe.comm_tile_rows = 4;
      group_tile_rows = 2;
      comm_binding = Design_space.Comm_on_dma;
    }
  in
  let program =
    Moe.part1_program ~config moe_spec route ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 1 do
    tensor_close
      (Printf.sprintf "moe part1 dma rank %d" rank)
      (Moe.part1_reference memory moe_spec route ~rank)
      (Memory.find memory ~rank ~name:"moe_mid")
  done

let moe_part2_config =
  {
    Moe.gg_tile_rows = 2;
    reduce_tile_rows = 2;
    rs_tile_rows = 2;
    reduce_sms = 1;
    rs_sms = 1;
  }

let test_moe_part2 () =
  let route = Moe.routing moe_spec ~seed:7 in
  let memory = Moe.part2_alloc moe_spec ~seed:43 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let program =
    Moe.part2_program ~config:moe_part2_config moe_spec route
      ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 1 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "moe part2 rank %d" rank)
      (Moe.part2_reference memory moe_spec route ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_moe_part2_world4 () =
  let spec = { moe_spec with Moe.tokens = 16; world_size = 4 } in
  let route = Moe.routing spec ~seed:8 in
  let memory = Moe.part2_alloc spec ~seed:44 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Moe.part2_program ~config:moe_part2_config spec route
      ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 3 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "moe part2 w4 rank %d" rank)
      (Moe.part2_reference memory spec route ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_moe_programs_consistent () =
  let route = Moe.routing moe_spec ~seed:9 in
  List.iter
    (fun program ->
      match Consistency.verify_program program with
      | Ok () -> ()
      | Error v ->
        Alcotest.failf "consistency violation: %a" Consistency.pp_violation v)
    [
      Moe.part1_program moe_spec route ~spec_gpu:Calib.test_machine
        ~config:
          {
            Moe.comm_tile_rows = 2;
            group_tile_rows = 2;
            comm_binding = Design_space.Comm_on_sm 1;
          };
      Moe.part2_program ~config:moe_part2_config moe_spec route
        ~spec_gpu:Calib.test_machine;
    ]

let test_expert_tiles_alignment () =
  let route = Moe.routing moe_spec ~seed:10 in
  let perm = Routing.permutation route in
  let tiles = Moe.expert_tiles perm ~tile_rows:3 in
  (* Tiles never cross expert segment boundaries and cover all rows. *)
  let covered = ref 0 in
  List.iter
    (fun (expert, lo, hi) ->
      covered := !covered + (hi - lo);
      Alcotest.(check bool) "within segment" true
        (lo >= perm.Routing.segment_offsets.(expert)
        && hi <= perm.Routing.segment_offsets.(expert + 1)))
    tiles;
  Alcotest.(check int) "full coverage" (8 * 2) !covered

(* ------------------------------------------------------------------ *)
(* Sequence-parallel attention                                         *)
(* ------------------------------------------------------------------ *)

let attn_spec =
  {
    Attention.batch_heads = 2;
    seq = 16;
    head_dim = 4;
    world_size = 2;
    causal = false;
  }

let attn_config = { Attention.q_tile = 4; kv_tile = 4 }

let check_attention spec msg =
  let memory = Attention.alloc spec ~seed:51 in
  let cluster =
    Cluster.create Calib.test_machine ~world_size:spec.Attention.world_size
  in
  let program =
    Attention.program ~config:attn_config spec ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to spec.Attention.world_size - 1 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "%s rank %d" msg rank)
      (Attention.reference memory spec ~rank)
      (Memory.find memory ~rank ~name:"o")
  done

let test_attention_full () = check_attention attn_spec "full attention"

let test_attention_causal () =
  check_attention { attn_spec with Attention.causal = true } "causal"

let test_attention_world4 () =
  check_attention
    { attn_spec with Attention.seq = 32; world_size = 4 }
    "world 4"

let test_attention_consistent () =
  let program =
    Attention.program ~config:attn_config attn_spec
      ~spec_gpu:Calib.test_machine
  in
  match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v

let test_attention_rejects_bad_tiles () =
  Alcotest.(check bool) "kv tile > segment rejected" true
    (try
       ignore
         (Attention.program
            ~config:{ Attention.q_tile = 4; kv_tile = 16 }
            attn_spec ~spec_gpu:Calib.test_machine);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Multi-node: kernels spanning two nodes route through the NIC        *)
(* ------------------------------------------------------------------ *)

let test_ag_gemm_across_two_nodes () =
  (* The test machine has gpus_per_node = 4, so 8 ranks span 2 nodes:
     the gather must stay correct and cross-node traffic must actually
     go through the NICs. *)
  let spec8 = { Mlp.m = 32; k = 4; n = 6; world_size = 8 } in
  let memory = Mlp.ag_gemm_alloc spec8 ~seed:71 in
  let cluster = Cluster.create Calib.test_machine ~world_size:8 in
  Alcotest.(check int) "two nodes" 2 (Cluster.num_nodes cluster);
  Alcotest.(check bool) "nodes split at 4" true
    (Cluster.same_node cluster 0 3 && not (Cluster.same_node cluster 3 4));
  let config =
    {
      base_config with
      Design_space.comm_tile = (4, 4);
      comm_order = Tile.Ring_from_self { segments = 8 };
    }
  in
  let program =
    Mlp.ag_gemm_program ~config spec8 ~spec_gpu:Calib.test_machine
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  for rank = 0 to 7 do
    tensor_close
      (Printf.sprintf "two-node rank %d" rank)
      (Mlp.ag_gemm_reference memory spec8 ~rank)
      (Memory.find memory ~rank ~name:"y")
  done;
  Alcotest.(check bool) "cross-node bytes went through NIC 0" true
    (Cluster.nic_bytes cluster ~node:0 > 0.0);
  Alcotest.(check bool) "and NIC 1" true
    (Cluster.nic_bytes cluster ~node:1 > 0.0);
  Alcotest.(check bool) "intra-node bytes on NVLink" true
    (Cluster.nvlink_bytes cluster ~rank_id:0 > 0.0)

let test_cross_node_slower_than_intra () =
  (* Same transfer volume, NIC vs NVLink: the inter-node path must be
     slower on the calibrated machine. *)
  let time src dst =
    let cluster = Cluster.create Calib.test_machine ~world_size:8 in
    let t = ref 0.0 in
    Tilelink_sim.Process.spawn (Cluster.engine cluster) (fun () ->
        Cluster.transfer cluster ~src ~dst ~bytes:1.0e6;
        t := Cluster.now cluster);
    Tilelink_sim.Engine.run (Cluster.engine cluster);
    !t
  in
  Alcotest.(check bool) "NIC slower than NVLink" true (time 0 4 > time 0 1)

(* ------------------------------------------------------------------ *)
(* RingAttention as a tile program                                     *)
(* ------------------------------------------------------------------ *)

let ring_config = { Ring_attention.q_tile = 4; comm_sms = 1 }

let check_ring_attention spec msg =
  let memory = Ring_attention.alloc spec ~seed:61 in
  let cluster =
    Cluster.create Calib.test_machine ~world_size:spec.Attention.world_size
  in
  let program =
    Ring_attention.program ~config:ring_config spec
      ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to spec.Attention.world_size - 1 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "%s rank %d" msg rank)
      (Ring_attention.reference memory spec ~rank)
      (Memory.find memory ~rank ~name:"o")
  done

let test_ring_attention_full () = check_ring_attention attn_spec "ring full"

let test_ring_attention_causal () =
  check_ring_attention
    { attn_spec with Attention.causal = true }
    "ring causal"

let test_ring_attention_world4 () =
  check_ring_attention
    { attn_spec with Attention.seq = 32; world_size = 4 }
    "ring world 4"

let test_ring_attention_consistent () =
  let program =
    Ring_attention.program ~config:ring_config attn_spec
      ~spec_gpu:Calib.test_machine
  in
  match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v

let test_ring_segment_rotation () =
  let spec = { attn_spec with Attention.world_size = 4 } in
  (* Rank 1 holds its own segment at step 0, then 0, 3, 2. *)
  Alcotest.(check (list int)) "rotation" [ 1; 0; 3; 2 ]
    (List.init 4 (fun step -> Ring_attention.segment_at spec ~rank:1 ~step))

(* ------------------------------------------------------------------ *)
(* Expert-parallel MoE (All2All extension)                             *)
(* ------------------------------------------------------------------ *)

let ep_spec =
  {
    Ep_moe.tokens = 16;
    hidden = 4;
    intermediate = 6;
    experts = 4;
    topk = 2;
    world_size = 2;
  }

let ep_config =
  { Ep_moe.tile_rows = 2; comm_binding = Design_space.Comm_on_dma }

let check_ep_moe spec msg =
  let route = Ep_moe.routing spec ~seed:13 in
  let memory, _layout = Ep_moe.alloc spec route ~seed:14 in
  let cluster =
    Cluster.create Calib.test_machine ~world_size:spec.Ep_moe.world_size
  in
  let program =
    Ep_moe.program ~config:ep_config spec route ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to spec.Ep_moe.world_size - 1 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "%s rank %d" msg rank)
      (Ep_moe.reference memory spec route ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_ep_moe_correct () = check_ep_moe ep_spec "ep moe"

let test_ep_moe_world4 () =
  check_ep_moe
    { ep_spec with Ep_moe.tokens = 32; experts = 8; world_size = 4 }
    "ep moe w4"

let test_ep_moe_topk1 () =
  check_ep_moe { ep_spec with Ep_moe.topk = 1 } "ep moe topk1"

let test_ep_moe_sm_binding () =
  let route = Ep_moe.routing ep_spec ~seed:15 in
  let memory, _ = Ep_moe.alloc ep_spec route ~seed:16 in
  let cluster = Cluster.create Calib.test_machine ~world_size:2 in
  let program =
    Ep_moe.program
      ~config:{ Ep_moe.tile_rows = 2; comm_binding = Design_space.Comm_on_sm 1 }
      ep_spec route ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  for rank = 0 to 1 do
    tensor_close ~atol:1e-8
      (Printf.sprintf "ep moe sm rank %d" rank)
      (Ep_moe.reference memory ep_spec route ~rank)
      (Memory.find memory ~rank ~name:"out")
  done

let test_ep_moe_layout_invariants () =
  let route = Ep_moe.routing ep_spec ~seed:17 in
  let layout = Ep_moe.build_layout ep_spec route in
  (* Every token-slot appears in exactly one segment, on the rank that
     owns its expert, at consistent offsets. *)
  let total =
    Array.fold_left
      (fun acc segs ->
        List.fold_left
          (fun acc (seg : Ep_moe.segment) ->
            acc + List.length seg.Ep_moe.entries)
          acc segs)
      0 layout.Ep_moe.segments_of_rank
  in
  Alcotest.(check int) "all slots placed"
    (ep_spec.Ep_moe.tokens * ep_spec.Ep_moe.topk)
    total;
  Array.iteri
    (fun owner segs ->
      let last = ref 0 in
      List.iter
        (fun (seg : Ep_moe.segment) ->
          Alcotest.(check int) "offsets contiguous" !last seg.Ep_moe.recv_lo;
          last := seg.Ep_moe.recv_lo + List.length seg.Ep_moe.entries;
          Alcotest.(check int) "expert owned here" owner
            (Ep_moe.expert_owner ep_spec seg.Ep_moe.expert))
        segs;
      Alcotest.(check int) "recv height" layout.Ep_moe.recv_rows.(owner) !last)
    layout.Ep_moe.segments_of_rank

let test_ep_moe_consistent () =
  let route = Ep_moe.routing ep_spec ~seed:18 in
  let program =
    Ep_moe.program ~config:ep_config ep_spec route
      ~spec_gpu:Calib.test_machine
  in
  match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v

(* ------------------------------------------------------------------ *)
(* Pipeline parallelism (future-work feature, §7.4)                    *)
(* ------------------------------------------------------------------ *)

let pp_spec =
  { Pipeline_parallel.stages = 3; micro_batches = 4; micro_rows = 4; width = 5 }

let pp_config = { Pipeline_parallel.tile_rows = 4; comm_sms = 1 }

let test_pipeline_parallel_correct () =
  let memory = Pipeline_parallel.alloc pp_spec ~seed:81 in
  let cluster = Cluster.create Calib.test_machine ~world_size:3 in
  let program =
    Pipeline_parallel.program ~config:pp_config pp_spec
      ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  tensor_close ~atol:1e-8 "chained gemm through 3 stages"
    (Pipeline_parallel.reference memory pp_spec)
    (Memory.find memory ~rank:2 ~name:"out_buf")

let test_pipeline_parallel_overlaps () =
  (* With several micro-batches the pipelined makespan must be well
     under serial stage-after-stage execution. *)
  let spec =
    { Pipeline_parallel.stages = 4; micro_batches = 8; micro_rows = 512;
      width = 2048 }
  in
  let cluster = Cluster.create Calib.h800 ~world_size:4 in
  let program =
    Pipeline_parallel.program spec ~spec_gpu:Calib.h800
      ~config:{ Pipeline_parallel.tile_rows = 128; comm_sms = 8 }
  in
  let pipelined = (Runtime.run cluster program).Runtime.makespan in
  let serial = Pipeline_parallel.serial_time Calib.h800 spec in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined (%.0f) < 0.8 * serial (%.0f)" pipelined serial)
    true
    (pipelined < 0.8 *. serial)

let test_pipeline_parallel_consistent () =
  let program =
    Pipeline_parallel.program ~config:pp_config pp_spec
      ~spec_gpu:Calib.test_machine
  in
  match Consistency.verify_program program with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "consistency violation: %a" Consistency.pp_violation v

let test_pipeline_parallel_single_stage () =
  (* Degenerate single-stage pipeline: just the local GEMM. *)
  let spec =
    { Pipeline_parallel.stages = 1; micro_batches = 2; micro_rows = 4;
      width = 3 }
  in
  let memory = Pipeline_parallel.alloc spec ~seed:82 in
  let cluster = Cluster.create Calib.test_machine ~world_size:1 in
  let program =
    Pipeline_parallel.program ~config:pp_config spec
      ~spec_gpu:Calib.test_machine
  in
  let _result = Runtime.run ~data:true ~memory cluster program in
  tensor_close ~atol:1e-8 "single stage"
    (Pipeline_parallel.reference memory spec)
    (Memory.find memory ~rank:0 ~name:"out_buf")

let () =
  Alcotest.run "workloads"
    [
      ( "ag_gemm",
        [
          Alcotest.test_case "sm binding" `Quick test_ag_gemm_sm_binding;
          Alcotest.test_case "dma binding" `Quick test_ag_gemm_dma_binding;
          Alcotest.test_case "hybrid binding" `Quick
            test_ag_gemm_hybrid_binding;
          Alcotest.test_case "ring orders" `Quick test_ag_gemm_ring_orders;
          Alcotest.test_case "decoupled tiles" `Quick
            test_ag_gemm_mismatched_tiles;
          Alcotest.test_case "deep pipeline" `Quick
            test_ag_gemm_deep_pipeline;
          Alcotest.test_case "push mode" `Quick test_ag_gemm_push_mode;
          Alcotest.test_case "push mode dma" `Quick
            test_ag_gemm_push_mode_dma;
          Alcotest.test_case "push world 4" `Quick test_ag_gemm_push_world4;
          Alcotest.test_case "push consistent" `Quick
            test_ag_gemm_push_consistent;
          Alcotest.test_case "consistent" `Quick
            test_ag_gemm_program_is_consistent;
          Alcotest.test_case "rejects bad tile" `Quick
            test_ag_gemm_rejects_bad_tile;
          QCheck_alcotest.to_alcotest prop_ag_gemm_correct_random_shapes;
        ] );
      ( "gemm_rs",
        [
          Alcotest.test_case "basic" `Quick test_gemm_rs_basic;
          Alcotest.test_case "hybrid" `Quick test_gemm_rs_hybrid;
          Alcotest.test_case "decoupled tiles" `Quick
            test_gemm_rs_decoupled_tiles;
          Alcotest.test_case "world 4" `Quick test_gemm_rs_larger_world;
          Alcotest.test_case "consistent" `Quick test_gemm_rs_consistent;
        ] );
      ( "moe",
        [
          Alcotest.test_case "part1" `Quick test_moe_part1;
          Alcotest.test_case "part1 dma" `Quick test_moe_part1_dma;
          Alcotest.test_case "part2" `Quick test_moe_part2;
          Alcotest.test_case "part2 world 4" `Quick test_moe_part2_world4;
          Alcotest.test_case "consistent" `Quick test_moe_programs_consistent;
          Alcotest.test_case "expert tiles" `Quick
            test_expert_tiles_alignment;
        ] );
      ( "attention",
        [
          Alcotest.test_case "full" `Quick test_attention_full;
          Alcotest.test_case "causal" `Quick test_attention_causal;
          Alcotest.test_case "world 4" `Quick test_attention_world4;
          Alcotest.test_case "consistent" `Quick test_attention_consistent;
          Alcotest.test_case "rejects bad tiles" `Quick
            test_attention_rejects_bad_tiles;
        ] );
      ( "multi-node",
        [
          Alcotest.test_case "ag+gemm across two nodes" `Quick
            test_ag_gemm_across_two_nodes;
          Alcotest.test_case "nic slower than nvlink" `Quick
            test_cross_node_slower_than_intra;
        ] );
      ( "ring_attention",
        [
          Alcotest.test_case "full" `Quick test_ring_attention_full;
          Alcotest.test_case "causal" `Quick test_ring_attention_causal;
          Alcotest.test_case "world 4" `Quick test_ring_attention_world4;
          Alcotest.test_case "consistent" `Quick
            test_ring_attention_consistent;
          Alcotest.test_case "segment rotation" `Quick
            test_ring_segment_rotation;
        ] );
      ( "ep_moe",
        [
          Alcotest.test_case "correct" `Quick test_ep_moe_correct;
          Alcotest.test_case "world 4" `Quick test_ep_moe_world4;
          Alcotest.test_case "topk 1" `Quick test_ep_moe_topk1;
          Alcotest.test_case "sm binding" `Quick test_ep_moe_sm_binding;
          Alcotest.test_case "layout invariants" `Quick
            test_ep_moe_layout_invariants;
          Alcotest.test_case "consistent" `Quick test_ep_moe_consistent;
        ] );
      ( "pipeline_parallel",
        [
          Alcotest.test_case "correct" `Quick test_pipeline_parallel_correct;
          Alcotest.test_case "overlaps" `Quick
            test_pipeline_parallel_overlaps;
          Alcotest.test_case "consistent" `Quick
            test_pipeline_parallel_consistent;
          Alcotest.test_case "single stage" `Quick
            test_pipeline_parallel_single_stage;
        ] );
    ]
