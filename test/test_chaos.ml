(* Chaos subsystem tests: seeded schedules are deterministic,
   timing-only faults never change results, dropped signals are either
   retried to a numerically identical completion, degraded to the
   non-overlapped fallback, or named exactly in a structured Stall —
   across both the MLP and MoE workloads. *)

open Tilelink_core
open Tilelink_machine
open Tilelink_workloads
module Chaos = Tilelink_core.Chaos
module Harness = Tilelink_chaos.Harness
module Pool = Tilelink_exec.Pool
module Check = Tilelink_tensor.Check

(* ------------------------------------------------------------------ *)
(* PRNG and schedule determinism                                       *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Chaos.Prng.create ~seed:5 and b = Chaos.Prng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Chaos.Prng.next a)
      (Chaos.Prng.next b)
  done;
  let c = Chaos.Prng.create ~seed:6 in
  Alcotest.(check bool) "different seed, different stream" true
    (Chaos.Prng.next a <> Chaos.Prng.next c)

let test_prng_float_range () =
  let r = Chaos.Prng.create ~seed:17 in
  for _ = 1 to 1000 do
    let x = Chaos.Prng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_plan_deterministic () =
  let p () = Chaos.plan ~seed:42 ~world_size:8 () in
  Alcotest.(check (list (pair string string)))
    "same seed, same schedule"
    (Chaos.injected (p ()))
    (Chaos.injected (p ()));
  Alcotest.(check bool) "different seed, different schedule" true
    (Chaos.injected (Chaos.plan ~seed:43 ~world_size:8 ())
    <> Chaos.injected (p ()))

let test_derive_seed_stable () =
  Alcotest.(check int) "stable sub-seed"
    (Chaos.derive_seed ~seed:42 ~index:3)
    (Chaos.derive_seed ~seed:42 ~index:3);
  Alcotest.(check bool) "index changes sub-seed" true
    (Chaos.derive_seed ~seed:42 ~index:3 <> Chaos.derive_seed ~seed:42 ~index:4)

(* ------------------------------------------------------------------ *)
(* Timing-only faults never change results                             *)
(* ------------------------------------------------------------------ *)

(* Stragglers, link windows and copy stalls reshape the timeline but
   carry no data effect, so every trial must validate bit-for-bit
   against the reference no matter the seed. *)
let timing_only_spec =
  {
    (Chaos.default_spec) with
    Chaos.drop_prob = 0.0;
    duplicate_prob = 0.0;
    delay_prob = 0.0;
  }

let timing_only_prop workload seed =
  let t =
    Harness.run_trial ~spec:timing_only_spec ~workload ~seed ~index:0 ()
  in
  t.Harness.numerics_ok
  && t.Harness.classification = Harness.Clean
  && t.Harness.retries = 0

let prop_mlp_timing_faults_preserve_results =
  QCheck.Test.make ~name:"mlp: stragglers/link windows preserve results"
    ~count:5
    QCheck.(int_range 0 10_000)
    (timing_only_prop Harness.Mlp_ag_gemm)

let prop_moe_timing_faults_preserve_results =
  QCheck.Test.make ~name:"moe: stragglers/link windows preserve results"
    ~count:3
    QCheck.(int_range 0 10_000)
    (timing_only_prop Harness.Moe_part2)

(* Signal delays (delivery rescheduled later) are also timing-only. *)
let delay_only_spec =
  {
    (Chaos.no_machine_faults Chaos.default_spec) with
    Chaos.delay_prob = 0.5;
    delay_us = 30.0;
  }

let prop_delayed_signals_preserve_results =
  QCheck.Test.make ~name:"mlp: delayed signals preserve results" ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let t =
        Harness.run_trial ~spec:delay_only_spec ~workload:Harness.Mlp_ag_gemm
          ~seed ~index:0 ()
      in
      t.Harness.numerics_ok && t.Harness.classification <> Harness.Stalled)

(* ------------------------------------------------------------------ *)
(* Dropped notifies: retry, stall, degrade                             *)
(* ------------------------------------------------------------------ *)

let drop_spec = Chaos.signal_faults_only ~drop_prob:0.25

(* Find a trial index where a dropped signal actually left a wait
   hanging (classified Recovered under the default retry policy).  A
   drop can be masked when a later notify raises the same key past the
   blocked threshold, so scanning on the injection log alone is not
   enough — the stall/degrade tests below replay the exact same
   schedule with recovery restricted. *)
let find_recovered_trial workload ~seed =
  let rec go index =
    if index > 20 then
      Alcotest.fail "no recovered trial in 20 seeded attempts"
    else
      let t =
        Harness.run_trial ~spec:drop_spec ~workload ~seed ~index ()
      in
      if t.Harness.classification = Harness.Recovered then (index, t)
      else go (index + 1)
  in
  go 0

let dropped_keys t =
  List.filter_map
    (fun (kind, subject) -> if kind = "drop" then Some subject else None)
    t.Harness.faults

let test_drop_retry_recovers workload () =
  let _, t = find_recovered_trial workload ~seed:101 in
  Alcotest.(check bool) "numerics identical to fault-free run" true
    t.Harness.numerics_ok;
  Alcotest.(check bool) "a signal was dropped" true (dropped_keys t <> []);
  Alcotest.(check bool) "watchdog retried" true (t.Harness.retries > 0);
  Alcotest.(check bool) "recovery latency recorded" true
    (List.for_all (fun (_, l) -> l > 0.0) t.Harness.recovered_signals
    && t.Harness.recovered_signals <> [])

let test_no_retry_stall_names_signal workload () =
  let index, with_retry = find_recovered_trial workload ~seed:101 in
  let t =
    Harness.run_trial ~spec:drop_spec ~retry:false ~policy:Chaos.Fail_stop
      ~workload ~seed:101 ~index ()
  in
  Alcotest.(check bool) "classified stalled" true
    (t.Harness.classification = Harness.Stalled);
  Alcotest.(check bool) "numerics not validated" false t.Harness.numerics_ok;
  match t.Harness.stall with
  | None -> Alcotest.fail "stalled trial carries no stall info"
  | Some s ->
    Alcotest.(check bool) "stall names a dropped signal" true
      (List.mem s.Harness.si_key (dropped_keys with_retry));
    let kind, owner, channel = Chaos.parse_key s.Harness.si_key in
    Alcotest.(check string) "kind parsed" kind s.Harness.si_kind;
    Alcotest.(check int) "producer rank parsed" owner s.Harness.si_owner;
    Alcotest.(check bool) "channel parsed" true
      (channel = s.Harness.si_channel);
    if s.Harness.si_kind = "pc" then
      Alcotest.(check bool) "pc stall maps to tile rows" true
        (s.Harness.si_tile_rows <> None)

let test_degrade_fallback workload () =
  let index, _ = find_recovered_trial workload ~seed:101 in
  let t =
    Harness.run_trial ~spec:drop_spec ~retry:false ~policy:Chaos.Degrade
      ~workload ~seed:101 ~index ()
  in
  Alcotest.(check bool) "classified degraded" true
    (t.Harness.classification = Harness.Degraded);
  Alcotest.(check bool) "force-released keys recorded" true
    (t.Harness.degraded_keys <> []);
  Alcotest.(check bool) "achieved overlap < 1" true
    (t.Harness.achieved_overlap < 1.0);
  Alcotest.(check bool) "fallback cost charged" true
    (t.Harness.fallback_us > 0.0);
  Alcotest.(check bool) "numerics restored by fallback" true
    t.Harness.numerics_ok

(* ------------------------------------------------------------------ *)
(* Crash failover                                                      *)
(* ------------------------------------------------------------------ *)

(* One forced permanent crash mid-kernel: the trial must complete as
   Failed_over with bit-identical numerics, and the ledger must show a
   genuine partial replay — strictly fewer tiles re-executed than the
   program holds (the checkpointed majority was not redone). *)
let test_failover_recovers workload () =
  let t = Harness.run_trial ~crash_ranks:1 ~workload ~seed:42 ~index:0 () in
  Alcotest.(check bool) "classified failed_over" true
    (t.Harness.classification = Harness.Failed_over);
  Alcotest.(check bool) "numerics identical to fault-free run" true
    t.Harness.numerics_ok;
  Alcotest.(check bool) "one rank crashed" true
    (List.length t.Harness.failed_over_ranks = 1);
  Alcotest.(check bool) "recovery latency positive" true
    (List.for_all (fun (_, l) -> l > 0.0) t.Harness.failed_over_ranks);
  Alcotest.(check bool) "some tiles replayed" true
    (t.Harness.replayed_tiles > 0);
  Alcotest.(check bool) "replay is partial (ledger checkpoint held)" true
    (t.Harness.replayed_tiles < t.Harness.total_tiles);
  Alcotest.(check int) "remapped = replayed" t.Harness.remapped_tiles
    t.Harness.replayed_tiles;
  Alcotest.(check bool) "crash recorded in the injection log" true
    (List.exists (fun (kind, _) -> kind = "rank_crash") t.Harness.faults)

(* Crashing every rank leaves nobody to fail over to: the coordinator
   must triage this as a structural stall naming the unrecoverable
   channel — never a hang or a bare deadlock. *)
let test_no_survivors_structural_stall () =
  let t =
    Harness.run_trial ~crash_ranks:2 ~workload:Harness.Attention_ag ~seed:42
      ~index:0 ()
  in
  Alcotest.(check bool) "classified stalled" true
    (t.Harness.classification = Harness.Stalled);
  match t.Harness.stall with
  | None -> Alcotest.fail "no-survivor crash carries no stall info"
  | Some s ->
    Alcotest.(check bool) "stall names a channel key" true
      (s.Harness.si_key <> "");
    let kind, owner, _ = Chaos.parse_key s.Harness.si_key in
    Alcotest.(check string) "kind parsed" kind s.Harness.si_kind;
    Alcotest.(check int) "owner parsed" owner s.Harness.si_owner

(* Teardown regression: a sweep whose early trial stalls (poisoned
   cluster state, watchdog mid-flight) must leave later trials exactly
   as they would be when run fresh in isolation. *)
let test_stalled_trial_does_not_leak () =
  let spec = drop_spec in
  let stalled_index, _ = find_recovered_trial Harness.Mlp_ag_gemm ~seed:101 in
  let sweep =
    Harness.run_trials ~spec ~retry:false ~policy:Chaos.Fail_stop
      ~workload:Harness.Mlp_ag_gemm ~seed:101
      ~trials:(stalled_index + 2)
      ()
  in
  Alcotest.(check bool) "sweep contains a stalled trial" true
    (sweep.Harness.s_stalled > 0);
  let fresh =
    Harness.run_trial ~spec ~retry:false ~policy:Chaos.Fail_stop
      ~workload:Harness.Mlp_ag_gemm ~seed:101 ~index:(stalled_index + 1) ()
  in
  let in_sweep =
    List.nth sweep.Harness.s_trials (stalled_index + 1)
  in
  Alcotest.(check string) "post-stall trial identical to a fresh run"
    (Harness.Obs.Json.to_string ~indent:true (Harness.trial_to_json fresh))
    (Harness.Obs.Json.to_string ~indent:true (Harness.trial_to_json in_sweep))

(* Same (seed, crash spec) must reproduce the summary JSON byte for
   byte, crashes included. *)
let prop_crash_summary_deterministic =
  QCheck.Test.make ~name:"crash trials: summary JSON reproducible" ~count:3
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let run () =
        Harness.summary_to_string
          (Harness.run_trials ~crash_ranks:1 ~workload:Harness.Mlp_ag_gemm
             ~seed ~trials:2 ())
      in
      run () = run ())

(* Crash-free summaries must not even mention failover — the JSON stays
   byte-identical to pre-failover output, protecting the --check
   contract of existing seeds. *)
let test_crash_free_summary_unchanged () =
  let json =
    Harness.summary_to_string
      (Harness.run_trials ~workload:Harness.Mlp_ag_gemm ~seed:42 ~trials:3 ())
  in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json
      && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "no failed_over key" false (contains "failed_over");
  Alcotest.(check bool) "no failover_latency_us key" false
    (contains "failover_latency_us");
  Alcotest.(check bool) "no total_tiles key" false (contains "total_tiles")

(* A second crash landing squarely mid-replay of the first: the
   re-entrant coordinator must detect it on a later watchdog tick,
   re-enter failover (remapping on top of the first remap without
   reusing alias slots), and finish the run with bit-identical
   numerics.  The historical failure mode was the coordinator wedging
   in its replay join and the run dying as Engine.Deadlock — which
   lib/serve/batcher.ml then had to accept as an outcome. *)
let test_second_crash_mid_replay () =
  let spec = { Mlp.m = 16; k = 4; n = 6; world_size = 4 } in
  let config =
    {
      Design_space.comm_tile = (2, 128);
      compute_tile = (2, 2);
      comm_order = Tile.Ring_from_self { segments = 4 };
      compute_order = Tile.Ring_from_self { segments = 4 };
      binding = Design_space.Comm_on_sm 1;
      stages = 2;
      micro_block = 0;
    }
  in
  let build () =
    Mlp.ag_gemm_program ~config spec ~spec_gpu:Calib.test_machine
  in
  let ideal =
    let cluster = Cluster.create Calib.test_machine ~world_size:4 in
    (Runtime.run cluster (build ())).Runtime.makespan
  in
  (* First crash at 30% of the fault-free makespan; the watchdog ticks
     every ideal/50, so replay of the first crash starts within one
     tick — the second crash 2.5 ticks later is guaranteed to land
     while that replay is still in flight (it spans many ticks). *)
  let poll = ideal /. 50.0 in
  let t1 = 0.3 *. ideal in
  let t2 = t1 +. (2.5 *. poll) in
  let quiet =
    {
      (Chaos.no_machine_faults Chaos.default_spec) with
      Chaos.drop_prob = 0.0;
      duplicate_prob = 0.0;
      delay_prob = 0.0;
    }
  in
  let schedule =
    Chaos.with_crashes
      (Chaos.plan ~spec:quiet ~horizon_us:(2.0 *. ideal) ~seed:7
         ~world_size:4 ())
      [
        (0, { Chaos.cr_at = t1; cr_until = None });
        (1, { Chaos.cr_at = t2; cr_until = None });
      ]
  in
  let watchdog =
    {
      Chaos.poll_interval_us = poll;
      wait_timeout_us = 2.0 *. ideal;
      stall_timeout_us = 8.0 *. ideal;
      max_retries = 5;
      backoff_base_us = ideal /. 10.0;
      retry = true;
      policy = Chaos.Failover;
    }
  in
  let control = Chaos.control ~schedule ~watchdog () in
  let memory = Mlp.ag_gemm_alloc spec ~seed:11 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let telemetry = Harness.Obs.Telemetry.create () in
  let result =
    Runtime.run ~telemetry ~data:true ~memory ~chaos:control ~rebuild:build
      cluster (build ())
  in
  Alcotest.(check bool) "run outlives the fault-free makespan" true
    (result.Runtime.makespan > ideal);
  let rec_ = control.Chaos.c_recovery in
  Alcotest.(check int) "both crashes failed over"
    2
    (List.length rec_.Chaos.failed_over);
  Alcotest.(check bool) "recovery latencies positive" true
    (List.for_all (fun (_, l) -> l > 0.0) rec_.Chaos.failed_over);
  Alcotest.(check bool) "tiles were replayed" true
    (rec_.Chaos.replayed_tiles > 0);
  Alcotest.(check (list int)) "no structural stalls" []
    (List.map (fun s -> s.Chaos.stall_owner) rec_.Chaos.stalls);
  (* The journal must prove the scenario: the second crash recorded
     after the first remap and before the first resume — i.e. truly
     mid-replay, not merely after it. *)
  let events =
    List.map
      (fun (e : Harness.Obs.Journal.entry) -> e.Harness.Obs.Journal.event)
      (Harness.Obs.Journal.entries (Harness.Obs.Telemetry.journal telemetry))
  in
  let index_of p =
    let rec go i = function
      | [] -> Alcotest.fail "expected journal event missing"
      | e :: rest -> if p e then i else go (i + 1) rest
    in
    go 0 events
  in
  let remap0 =
    index_of (function
      | Harness.Obs.Journal.Remapped { rank = 0; _ } -> true
      | _ -> false)
  in
  let crash1 =
    index_of (function
      | Harness.Obs.Journal.Rank_crashed { rank = 1; _ } -> true
      | _ -> false)
  in
  let resume0 =
    index_of (function
      | Harness.Obs.Journal.Resumed { rank = 0; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "second crash lands after the first remap" true
    (crash1 > remap0);
  Alcotest.(check bool) "second crash lands before the first resume" true
    (crash1 < resume0);
  (* And the data must still be exactly right on every rank, the two
     dead ones (reconstructed by replay) included. *)
  List.iter
    (fun rank ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d numerics intact" rank)
        true
        (Check.close
           (Mlp.ag_gemm_reference memory spec ~rank)
           (Memory.find memory ~rank ~name:"y")))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Summary determinism                                                 *)
(* ------------------------------------------------------------------ *)

let test_summary_reproducible () =
  let run () =
    Harness.summary_to_string
      (Harness.run_trials ~workload:Harness.Mlp_ag_gemm ~seed:42 ~trials:3 ())
  in
  Alcotest.(check string) "byte-identical summary JSON" (run ()) (run ())

let test_summary_counts () =
  let s =
    Harness.run_trials ~spec:drop_spec ~workload:Harness.Mlp_ag_gemm ~seed:101
      ~trials:4 ()
  in
  Alcotest.(check int) "classes partition the trials" 4
    (s.Harness.s_clean + s.Harness.s_recovered + s.Harness.s_failed_over
   + s.Harness.s_degraded + s.Harness.s_stalled);
  Alcotest.(check int) "trials retained in order" 4
    (List.length s.Harness.s_trials);
  List.iteri
    (fun i t -> Alcotest.(check int) "index" i t.Harness.index)
    s.Harness.s_trials

(* ------------------------------------------------------------------ *)
(* Pool task timeouts                                                  *)
(* ------------------------------------------------------------------ *)

let busy_work x =
  (* Enough real work to register on the wall clock. *)
  let s = ref x in
  for i = 1 to 2_000_000 do
    s := !s + i
  done;
  Sys.opaque_identity !s

let test_pool_task_timeout () =
  let pool = Pool.create ~domains:1 ~task_timeout_s:1e-9 () in
  let results = Pool.map (Some pool) busy_work [ 1; 2 ] in
  List.iter
    (fun r ->
      match r with
      | Error (Pool.Task_timeout dt) ->
        Alcotest.(check bool) "positive duration" true (dt >= 0.0)
      | Ok _ -> Alcotest.fail "busy task under 1ns budget?"
      | Error e -> raise e)
    results;
  Alcotest.(check int) "timeouts counted" 2 (Pool.stats pool).Pool.timeouts

let test_pool_generous_timeout () =
  let pool = Pool.create ~domains:1 ~task_timeout_s:60.0 () in
  let results = Pool.map (Some pool) (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "all complete" [ 2; 3; 4 ]
    (List.map Pool.get results);
  Alcotest.(check int) "no timeouts" 0 (Pool.stats pool).Pool.timeouts

(* ------------------------------------------------------------------ *)
(* Program-level fault transforms                                      *)
(* ------------------------------------------------------------------ *)

let small_mlp = { Mlp.m = 16; k = 4; n = 6; world_size = 4 }

let small_config =
  let ring = Tile.Ring_from_self { segments = 4 } in
  {
    Design_space.comm_tile = (2, 128);
    compute_tile = (2, 2);
    comm_order = ring;
    compute_order = ring;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

let run_small program =
  let memory = Mlp.ag_gemm_alloc small_mlp ~seed:11 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  ignore (Runtime.run ~data:true ~memory cluster program);
  memory

let check_small memory =
  List.for_all
    (fun rank ->
      Check.close
        (Mlp.ag_gemm_reference memory small_mlp ~rank)
        (Memory.find memory ~rank ~name:"y"))
    [ 0; 1; 2; 3 ]

let test_duplicate_notify_harmless () =
  let program = Mlp.ag_gemm_program ~config:small_config small_mlp
      ~spec_gpu:Calib.test_machine
  in
  let doubled = Fault.duplicate_notify program ~rank:1 ~nth:0 in
  Alcotest.(check int) "one extra notify"
    (Fault.count_notifies program ~rank:1 + 1)
    (Fault.count_notifies doubled ~rank:1);
  Alcotest.(check bool) "duplicate notify keeps results" true
    (check_small (run_small doubled))

let test_reorder_notifies_harmless () =
  let program = Mlp.ag_gemm_program ~config:small_config small_mlp
      ~spec_gpu:Calib.test_machine
  in
  let swapped = Fault.reorder_notifies program ~rank:2 ~nth:0 in
  Alcotest.(check int) "notify count unchanged"
    (Fault.count_notifies program ~rank:2)
    (Fault.count_notifies swapped ~rank:2);
  Alcotest.(check bool) "adjacent notify reorder keeps results" true
    (check_small (run_small swapped))

let test_reorder_notifies_out_of_range () =
  let program = Mlp.ag_gemm_program ~config:small_config small_mlp
      ~spec_gpu:Calib.test_machine
  in
  let n = Fault.count_notifies program ~rank:0 in
  Alcotest.check_raises "needs a successor notify"
    (Invalid_argument "Fault.reorder_notifies: nth out of range")
    (fun () -> ignore (Fault.reorder_notifies program ~rank:0 ~nth:(n - 1)))

(* ------------------------------------------------------------------ *)
(* Enriched deadlock diagnostics                                       *)
(* ------------------------------------------------------------------ *)

let test_deadlock_message_enriched () =
  let program = Mlp.ag_gemm_program ~config:small_config small_mlp
      ~spec_gpu:Calib.test_machine
  in
  let broken = Fault.drop_notify program ~rank:1 ~nth:0 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  match Runtime.run cluster broken with
  | _ -> Alcotest.fail "dropped notify should deadlock without a watchdog"
  | exception Tilelink_sim.Engine.Deadlock msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "lists pending waiters" true
      (contains "pending waiters");
    Alcotest.(check bool) "names a blocked wait edge" true (contains "waits")

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "chaos"
    [
      ( "prng",
        [
          Alcotest.test_case "prng deterministic" `Quick
            test_prng_deterministic;
          Alcotest.test_case "prng float range" `Quick test_prng_float_range;
          Alcotest.test_case "plan deterministic" `Quick
            test_plan_deterministic;
          Alcotest.test_case "derive_seed stable" `Quick
            test_derive_seed_stable;
        ] );
      ( "timing-faults",
        [
          qc prop_mlp_timing_faults_preserve_results;
          qc prop_moe_timing_faults_preserve_results;
          qc prop_delayed_signals_preserve_results;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "mlp: drop + retry recovers" `Quick
            (test_drop_retry_recovers Harness.Mlp_ag_gemm);
          Alcotest.test_case "moe: drop + retry recovers" `Quick
            (test_drop_retry_recovers Harness.Moe_part2);
          Alcotest.test_case "mlp: no-retry stall names signal" `Quick
            (test_no_retry_stall_names_signal Harness.Mlp_ag_gemm);
          Alcotest.test_case "moe: no-retry stall names signal" `Quick
            (test_no_retry_stall_names_signal Harness.Moe_part2);
          Alcotest.test_case "mlp: degrade falls back" `Quick
            (test_degrade_fallback Harness.Mlp_ag_gemm);
          Alcotest.test_case "moe: degrade falls back" `Quick
            (test_degrade_fallback Harness.Moe_part2);
        ] );
      ( "failover",
        [
          Alcotest.test_case "mlp: crash fails over, numerics intact" `Quick
            (test_failover_recovers Harness.Mlp_ag_gemm);
          Alcotest.test_case "moe: crash fails over, numerics intact" `Quick
            (test_failover_recovers Harness.Moe_part2);
          Alcotest.test_case "attention: crash fails over, numerics intact"
            `Quick
            (test_failover_recovers Harness.Attention_ag);
          Alcotest.test_case "no survivors: structural stall" `Quick
            test_no_survivors_structural_stall;
          Alcotest.test_case "second crash mid-replay re-enters failover"
            `Quick test_second_crash_mid_replay;
          Alcotest.test_case "stalled trial does not leak state" `Quick
            test_stalled_trial_does_not_leak;
          qc prop_crash_summary_deterministic;
          Alcotest.test_case "crash-free summary unchanged" `Quick
            test_crash_free_summary_unchanged;
        ] );
      ( "summary",
        [
          Alcotest.test_case "summary reproducible" `Quick
            test_summary_reproducible;
          Alcotest.test_case "summary counts" `Quick test_summary_counts;
        ] );
      ( "pool",
        [
          Alcotest.test_case "task timeout" `Quick test_pool_task_timeout;
          Alcotest.test_case "generous timeout" `Quick
            test_pool_generous_timeout;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "duplicate notify harmless" `Quick
            test_duplicate_notify_harmless;
          Alcotest.test_case "reorder notifies harmless" `Quick
            test_reorder_notifies_harmless;
          Alcotest.test_case "reorder out of range" `Quick
            test_reorder_notifies_out_of_range;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "deadlock message enriched" `Quick
            test_deadlock_message_enriched;
        ] );
    ]
