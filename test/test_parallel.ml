(* The parallel execution backend: sequential-vs-parallel bit-identity
   across every shipped workload program and randomized Table-2-style
   specs, the substrate's structured failure modes (deadlock backstop,
   stream exceptions), and the admission guards (chaos rejection,
   analyzer gate).

   Bit-identity is the backend's headline contract: all cross-task
   tensor traffic is ordered by the signal protocol (the analyzer's
   happens-before check guarantees it), and within a task the data
   actions run in program order on both backends, so any
   protocol-respecting schedule must produce the same bits — not just
   the same values up to tolerance. *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
module Backend = Tilelink_exec.Backend
module Suite = Tilelink_workloads.Suite

let machine = Calib.test_machine

(* ------------------------------------------------------------------ *)
(* Bitwise comparison                                                  *)
(* ------------------------------------------------------------------ *)

let tensor_bits_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let da = Tensor.data a and db = Tensor.data b in
  let n = Array.length da in
  Array.length db = n
  &&
  let rec go i =
    i >= n
    || Int64.equal (Int64.bits_of_float da.(i)) (Int64.bits_of_float db.(i))
       && go (i + 1)
  in
  go 0

(* Every buffer on every rank, bit for bit. *)
let memories_bits_equal ma mb =
  Memory.world_size ma = Memory.world_size mb
  && List.for_all
       (fun rank ->
         let names = Memory.buffers ma ~rank in
         names = Memory.buffers mb ~rank
         && List.for_all
              (fun name ->
                tensor_bits_equal
                  (Memory.find ma ~rank ~name)
                  (Memory.find mb ~rank ~name))
              names)
       (List.init (Memory.world_size ma) Fun.id)

(* All channel keys the program can touch, for counter cross-checks. *)
let program_keys (program : Program.t) =
  let keys = Hashtbl.create 32 in
  Program.iter_tasks program ~f:(fun ~rank:_ _role task ->
      List.iter
        (fun instr ->
          match instr with
          | Instr.Wait { target; _ } | Instr.Notify { target; _ } ->
            Hashtbl.replace keys (Instr.key_of_target target) ()
          | _ -> ())
        task.Program.instrs);
  Hashtbl.fold (fun k () acc -> k :: acc) keys [] |> List.sort compare

let run_backend ~backend case =
  let memory, program = case () in
  let cluster =
    Cluster.create machine ~world_size:(Program.world_size program)
  in
  let result = Runtime.run ~data:true ~memory ~backend cluster program in
  (memory, result)

let check_case ~domains name case =
  let mem_seq, r_seq = run_backend ~backend:`Sequential case in
  let mem_par, r_par = run_backend ~backend:(`Parallel domains) case in
  Alcotest.(check bool)
    (Printf.sprintf "%s: bit-identical tensors (domains=%d)" name domains)
    true
    (memories_bits_equal mem_seq mem_par);
  Alcotest.(check int)
    (Printf.sprintf "%s: same notify count" name)
    r_seq.Runtime.notifies r_par.Runtime.notifies;
  (* The mirrored channel state must agree counter by counter. *)
  let _, program = case () in
  List.iter
    (fun key ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s: counter %s" name key)
        (Channel.key_value r_seq.Runtime.channels ~key)
        (Channel.key_value r_par.Runtime.channels ~key))
    (program_keys program)

(* ------------------------------------------------------------------ *)
(* All shipped programs                                                *)
(* ------------------------------------------------------------------ *)

let test_suite_bit_identity () =
  let cases = Suite.data_cases () in
  Alcotest.(check int) "all 25 shipped programs" 25 (List.length cases);
  List.iter (fun (name, case) -> check_case ~domains:2 name case) cases

(* A one-domain team is the analyzer's fixpoint run for real: same
   cooperative stream model, zero parallelism — it must agree too. *)
let test_suite_single_domain () =
  let cases = Suite.data_cases () in
  List.iter
    (fun name -> check_case ~domains:1 name (List.assoc name cases))
    [ "mlp_ag_gemm_pull/w2/t2"; "mlp_gemm_rs/w4"; "ring_attention/w2" ]

(* ------------------------------------------------------------------ *)
(* Randomized Table-2-style specs (QCheck)                             *)
(* ------------------------------------------------------------------ *)

let qcheck_random_specs =
  QCheck.Test.make ~count:12 ~name:"random ag_gemm spec: seq = par bits"
    QCheck.(
      quad (int_range 1 3) (int_range 2 5) (int_range 2 6) (int_range 0 3))
    (fun (mult, k, n, salt) ->
      (* Clamp: QCheck's shrinker can step outside int_range bounds.
         The lattice constraints (comm tile divides the shard, even
         compute tiles) are satisfied by construction. *)
      let mult = max 1 mult and k = max 1 k and n = 2 * max 1 n in
      let salt = abs salt land 3 in
      let world = if salt land 1 = 0 then 2 else 4 in
      let shapes =
        { Tilelink_workloads.Mlp.m = 2 * mult * world; k; n; world_size = world }
      in
      let config =
        {
          Design_space.comm_tile = ((if salt land 2 = 0 then 2 else 2 * mult), 128);
          compute_tile = (2, 2);
          comm_order = Tile.Ring_from_self { segments = world };
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages = 1 + (salt land 1);
          micro_block = (if salt land 2 = 0 then 0 else 2);
        }
      in
      let transfer = if salt >= 2 then `Push else `Pull in
      let case () =
        ( Tilelink_workloads.Mlp.ag_gemm_alloc shapes ~seed:(31 + salt),
          Tilelink_workloads.Mlp.ag_gemm_program ~transfer ~config shapes
            ~spec_gpu:machine )
      in
      let mem_seq, _ = run_backend ~backend:`Sequential case in
      let mem_par, _ = run_backend ~backend:(`Parallel 3) case in
      memories_bits_equal mem_seq mem_par)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let test_rejects_chaos () =
  let name, case = List.hd (Suite.data_cases ()) in
  let memory, program = case () in
  let cluster =
    Cluster.create machine ~world_size:(Program.world_size program)
  in
  let chaos = Chaos.control ~schedule:(Chaos.plan ~seed:7 ~world_size:2 ()) () in
  (* The rejection must be the structured Unsupported diagnostic — a
     caller (the CLI) renders backend/feature/reason/hint without a
     backtrace — not a bare Invalid_argument. *)
  match
    Runtime.run ~data:true ~memory ~chaos ~backend:(`Parallel 2) cluster
      program
  with
  | exception Runtime.Unsupported u ->
    Alcotest.(check string)
      (Printf.sprintf "%s: refusing backend" name)
      "parallel" u.Runtime.u_backend;
    Alcotest.(check bool)
      "feature names chaos" true
      (u.Runtime.u_feature = "chaos fault injection");
    Alcotest.(check bool)
      "reason and hint are non-empty" true
      (u.Runtime.u_reason <> "" && u.Runtime.u_hint <> "")
  | exception e ->
    Alcotest.failf "expected Runtime.Unsupported, got %s"
      (Printexc.to_string e)
  | _ -> Alcotest.fail "chaos admitted to the parallel backend"

let test_analyzer_gate () =
  let _, case = List.hd (Suite.data_cases ()) in
  let memory, program = case () in
  (* A statically broken protocol (hoisted wait threshold) must be
     refused before any domain runs. *)
  let broken = Fault.bump_wait_threshold program ~rank:0 ~nth:0 in
  let cluster =
    Cluster.create machine ~world_size:(Program.world_size program)
  in
  match
    Runtime.run ~data:true ~memory ~backend:(`Parallel 2) cluster broken
  with
  | exception Analyzer.Protocol_violation _ -> ()
  | exception e ->
    Alcotest.failf "expected Protocol_violation, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "broken protocol admitted to the parallel backend"

(* ------------------------------------------------------------------ *)
(* Substrate failure modes                                             *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_backend_deadlock_backstop () =
  let team = Backend.shared 2 in
  let c = Backend.counter "pc[0][0]" in
  let starved =
    Backend.stream ~label:"consumer" ~home:0
      [ Backend.Wait { counter = c; threshold = 1 } ]
  in
  match Backend.run team [ starved ] with
  | exception Backend.Deadlock lines ->
    Alcotest.(check int) "one blocked wait" 1 (List.length lines);
    Alcotest.(check bool)
      "names the counter" true
      (List.exists (fun l -> contains_sub l "pc[0][0]") lines)
  | _ -> Alcotest.fail "starved wait did not raise Deadlock"

let test_backend_stream_failure () =
  let team = Backend.shared 2 in
  let boom =
    Backend.stream ~label:"worker" ~home:1
      [ Backend.Exec { label = "explode"; run = (fun () -> failwith "kaboom") } ]
  in
  match Backend.run team [ boom ] with
  | exception Backend.Stream_failure (where, Failure msg) ->
    Alcotest.(check string) "payload" "kaboom" msg;
    Alcotest.(check bool)
      "names the op and stream" true
      (String.length where > 0)
  | _ -> Alcotest.fail "raising exec did not raise Stream_failure"

let () =
  Alcotest.run "parallel"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "all shipped programs (2 domains)" `Quick
            test_suite_bit_identity;
          Alcotest.test_case "single-domain team" `Quick
            test_suite_single_domain;
          QCheck_alcotest.to_alcotest qcheck_random_specs;
        ] );
      ( "guards",
        [
          Alcotest.test_case "rejects chaos" `Quick test_rejects_chaos;
          Alcotest.test_case "analyzer gate" `Quick test_analyzer_gate;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "deadlock backstop" `Quick
            test_backend_deadlock_backstop;
          Alcotest.test_case "stream failure" `Quick
            test_backend_stream_failure;
        ] );
    ]
