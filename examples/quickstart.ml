(* Quickstart: build an overlapped AllGather + GEMM kernel from
   tile-centric primitives, check it computes the right answer on real
   data, then time it at LLaMA-7B scale against the non-overlapping
   baseline.

     dune exec examples/quickstart.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
open Tilelink_workloads
open Tilelink_baselines

let () =
  print_endline "== TileLink quickstart ==";

  (* 1. Describe the kernel: a TP AllGather + GEMM on 4 ranks.  The
     communication and computation sides pick *independent* tile sizes,
     orders and resources — the decoupled design space. *)
  let config =
    {
      Design_space.comm_tile = (4, 4);          (* AllGather moves 4 rows/tile *)
      compute_tile = (2, 3);                    (* GEMM consumes 2x3 tiles     *)
      comm_order = Tile.Ring_from_self { segments = 4 };
      compute_order = Tile.Ring_from_self { segments = 4 };
      binding = Design_space.Comm_on_dma;       (* gather on the copy engine   *)
      stages = 2;                               (* software pipeline depth     *)
      micro_block = 0;
    }
  in
  let shapes = { Mlp.m = 16; k = 4; n = 6; world_size = 4 } in

  (* 2. Correctness: run the generated program with real tensors on a
     small machine and compare against a plain GEMM of the gathered
     input. *)
  let memory = Mlp.ag_gemm_alloc shapes ~seed:42 in
  let program =
    Mlp.ag_gemm_program ~config shapes ~spec_gpu:Calib.test_machine
  in
  (match Consistency.verify_program program with
  | Ok () -> print_endline "memory-consistency check: ok"
  | Error v ->
    Format.printf "memory-consistency violation: %a@." Consistency.pp_violation v;
    exit 1);
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let result = Runtime.run ~data:true ~memory cluster program in
  let ok = ref true in
  for rank = 0 to 3 do
    let reference = Mlp.ag_gemm_reference memory shapes ~rank in
    let actual = Memory.find memory ~rank ~name:"y" in
    if not (Check.close reference actual) then ok := false
  done;
  Printf.printf "numerical check on 4 ranks: %s (simulated %.1f us, %d signals)\n"
    (if !ok then "ok" else "MISMATCH")
    result.Runtime.makespan result.Runtime.notifies;

  (* 3. Performance: the same builder at LLaMA-7B MLP scale on the
     calibrated 8xH800 model, vs cuBLAS+NCCL without overlap. *)
  let spec = Calib.h800 in
  let big = { Mlp.m = 8192; k = 4096; n = 2 * 11008 / 8; world_size = 8 } in
  let big_config =
    {
      config with
      Design_space.comm_tile = (512, 128);
      compute_tile = (128, 128);
      comm_order = Tile.Ring_from_self { segments = 8 };
      compute_order = Tile.Ring_from_self { segments = 8 };
    }
  in
  let program = Mlp.ag_gemm_program ~config:big_config big ~spec_gpu:spec in
  let cluster = Cluster.create spec ~world_size:8 in
  let overlapped = (Runtime.run cluster program).Runtime.makespan in
  let baseline =
    Nonoverlap.ag_gemm_time spec ~world_size:8 ~m:big.Mlp.m ~k:big.Mlp.k
      ~n:big.Mlp.n
  in
  Printf.printf
    "LLaMA-7B AG+GEMM on 8xH800-sim: non-overlap %.3f ms, overlapped %.3f \
     ms, speedup %.2fx\n"
    (baseline /. 1e3) (overlapped /. 1e3) (baseline /. overlapped)
