(* Full tensor-parallel MLP with overlap: AG+GEMM, gated activation,
   GEMM + ring ReduceScatter (Figure 1 / Figure 4 of the paper),
   including an ASCII timeline of one rank so the overlap is visible.

     dune exec examples/mlp_overlap.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
open Tilelink_workloads
open Tilelink_baselines

let spec = Calib.h800
let world = 8

let () =
  print_endline "== Tensor-parallel MLP with overlapped kernels ==";
  let shape = List.hd Shapes.mlp_configs in
  Printf.printf "shape: %s (S=%d H=%d I=%d) on %d ranks\n"
    shape.Shapes.mlp_name shape.Shapes.s shape.Shapes.h shape.Shapes.i world;

  (* Correctness first: the ring ReduceScatter of Figure 4 on real
     data, small shapes. *)
  let rs_small = { Mlp.rs_m = 16; rs_k = 3; rs_n = 4; rs_world = 4 } in
  let rs_config =
    {
      Design_space.comm_tile = (2, 2);
      compute_tile = (2, 2);
      comm_order = Tile.Row_major;
      compute_order = Tile.Row_major;
      binding = Design_space.Comm_on_sm 1;
      stages = 1;
      micro_block = 0;
    }
  in
  let memory = Mlp.gemm_rs_alloc rs_small ~seed:3 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Mlp.gemm_rs_program ~config:rs_config rs_small
      ~spec_gpu:Calib.test_machine
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let ok =
    List.for_all
      (fun rank ->
        Check.close
          (Mlp.gemm_rs_reference memory rs_small ~rank)
          (Memory.find memory ~rank ~name:"out"))
      [ 0; 1; 2; 3 ]
  in
  Printf.printf "ring ReduceScatter numerical check (4 ranks): %s\n"
    (if ok then "ok" else "MISMATCH");

  (* Performance at paper scale: tune both halves, then compare the
     assembled MLP with the baselines. *)
  let m = shape.Shapes.s and h = shape.Shapes.h in
  let ipr = shape.Shapes.i / world in
  let ag = Tuned.ag_gemm spec ~world_size:world ~m ~k:h ~n:(2 * ipr) in
  let rs = Tuned.gemm_rs spec ~world_size:world ~m ~k:ipr ~n:h in
  Printf.printf "tuned AG+GEMM : %.3f ms with [%s]\n"
    (ag.Tuned.best_time /. 1e3)
    (Design_space.config_to_string ag.Tuned.best_config);
  Printf.printf "tuned GEMM+RS : %.3f ms with [%s]\n"
    (rs.Tuned.best_time /. 1e3)
    (Design_space.config_to_string rs.Tuned.best_config);
  let act = Tuned.activation_time spec ~m ~i:ipr in
  let tilelink = ag.Tuned.best_time +. act +. rs.Tuned.best_time in
  let non = Nonoverlap.mlp_time spec ~world_size:world ~shape in
  let flux = Flux.mlp_time spec ~world_size:world ~shape in
  let dec = Decompose.mlp_time spec ~world_size:world ~shape in
  Printf.printf
    "full MLP: non-overlap %.3f ms | decompose %.3f ms | flux %.3f ms | \
     tilelink %.3f ms (%.2fx)\n"
    (non /. 1e3) (dec /. 1e3) (flux /. 1e3) (tilelink /. 1e3)
    (non /. tilelink);

  (* Timeline of the tuned GEMM+RS kernel on rank 0. *)
  print_endline "\nrank-0 timeline of the overlapped GEMM+RS kernel:";
  let cluster = Cluster.create ~trace_enabled:true spec ~world_size:world in
  let program =
    Mlp.gemm_rs_program ~config:rs.Tuned.best_config
      { Mlp.rs_m = m; rs_k = ipr; rs_n = h; rs_world = world }
      ~spec_gpu:spec
  in
  ignore (Runtime.run cluster program);
  let trace = Cluster.trace cluster in
  let rank0 = Tilelink_sim.Trace.create () in
  List.iter
    (fun s ->
      if s.Tilelink_sim.Trace.rank = 0 then
        Tilelink_sim.Trace.add rank0 ~rank:0 ~lane:s.Tilelink_sim.Trace.lane
          ~label:s.Tilelink_sim.Trace.label ~t0:s.Tilelink_sim.Trace.t0
          ~t1:s.Tilelink_sim.Trace.t1)
    (Tilelink_sim.Trace.spans trace);
  print_endline (Tilelink_sim.Trace.render rank0)
