(* Autotuning the decoupled design space: enumerate tile sizes, orders
   and resource bindings independently for communication and
   computation, simulate every candidate, and show why the decoupled
   optimum beats the coupled (FLUX-style) point.

     dune exec examples/autotune_demo.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_workloads

let spec = Calib.h800
let world = 8

let () =
  print_endline "== Autotuning the decoupled design space ==";
  let shapes = { Mlp.m = 8192; k = 4096; n = 2752; world_size = world } in

  (* A compact slice of the full space (the complete cross product is
     Design_space.default_space). *)
  let space =
    {
      Design_space.comm_tiles = [ (128, 128); (256, 128); (512, 128) ];
      compute_tiles = [ (128, 128) ];
      comm_orders = [ Tile.Ring_from_self { segments = world } ];
      compute_orders = [ Tile.Ring_from_self { segments = world } ];
      bindings =
        [
          Design_space.Comm_on_sm 20;
          Design_space.Comm_on_dma;
          Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
        ];
      stage_choices = [ 1; 2 ];
      micro_blocks = [ 0 ];
    }
  in
  let configs = Design_space.enumerate space in
  Printf.printf "searching %d candidates for AG+GEMM (M=%d K=%d N=%d)...\n"
    (List.length configs) shapes.Mlp.m shapes.Mlp.k shapes.Mlp.n;
  match
    Tune.search_programs
      ~build:(fun config -> Mlp.ag_gemm_program ~config shapes ~spec_gpu:spec)
      ~make_cluster:(fun () -> Cluster.create spec ~world_size:world)
      configs
  with
  | None -> print_endline "no candidate built"
  | Some outcome ->
    List.iter
      (fun e ->
        Printf.printf "  %8.1f us  %s\n" e.Tune.time
          (Design_space.config_to_string e.Tune.config))
      (List.sort
         (fun a b -> compare a.Tune.time b.Tune.time)
         outcome.Tune.evaluated);
    Printf.printf "best: %.1f us with [%s] (%d evaluated, %d skipped)\n"
      outcome.Tune.best.Tune.time
      (Design_space.config_to_string outcome.Tune.best.Tune.config)
      (List.length outcome.Tune.evaluated)
      outcome.Tune.skipped;
    (* Compare against the coupled point: communication inherits the
       GEMM's tiling and runs on SMs. *)
    let coupled =
      Design_space.coupled ~tile:(128, 128)
        ~order:(Tile.Ring_from_self { segments = world })
        ~comm_sms:20 ~stages:2
    in
    let coupled_time =
      let cluster = Cluster.create spec ~world_size:world in
      (Runtime.run cluster
         (Mlp.ag_gemm_program ~config:coupled shapes ~spec_gpu:spec))
        .Runtime.makespan
    in
    Printf.printf
      "coupled (FLUX-style) point: %.1f us — decoupling wins %.1f%%\n"
      coupled_time
      ((coupled_time -. outcome.Tune.best.Tune.time)
      /. coupled_time *. 100.0)
